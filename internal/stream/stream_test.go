package stream

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// oracleScale mirrors check.DefaultOracleScale (the check package
// imports this one, so the literal is repeated here): CI-sized oracle
// workloads, a few hundred frames each.
var oracleScale = workload.Scale{Width: 160, Height: 96, FrameDivisor: 8, DetailDivisor: 2}

// seedData is one oracle-scale randomized workload characterized by the
// batch funcsim — the shared input of most tests here.
type seedData struct {
	name string
	fr   *funcsim.Result
}

var (
	seedMu    sync.Mutex
	seedCache = map[uint64]*seedData{}
)

// seedResult characterizes the oracle's randomized workload for a seed,
// memoized across tests.
func seedResult(t testing.TB, seed uint64) *seedData {
	t.Helper()
	seedMu.Lock()
	defer seedMu.Unlock()
	if d, ok := seedCache[seed]; ok {
		return d
	}
	p := workload.RandomProfile(seed)
	tr, err := workload.Generate(p, oracleScale)
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	fr, err := funcsim.Run(tr)
	if err != nil {
		t.Fatalf("funcsim: %v", err)
	}
	d := &seedData{name: tr.Name, fr: fr}
	seedCache[seed] = d
	return d
}

func newTestIngestor(d *seedData, cfg Config) *Ingestor {
	return NewIngestor(d.name, d.fr.VSStatic, d.fr.FSStatic, cfg)
}

// TestChunkSplitInvariance: the final strata are a pure function of the
// frame sequence — any chunking (frame-at-a-time, odd-sized chunks, one
// big batch) yields bit-identical snapshots and selections.
func TestChunkSplitInvariance(t *testing.T) {
	d := seedResult(t, 1)
	cfg := DefaultConfig()
	cfg.Seed = 1

	type run struct {
		snap []byte
		sel  *Selection
	}
	ingest := func(chunk int) run {
		in := newTestIngestor(d, cfg)
		profs := d.fr.Profiles
		for lo := 0; lo < len(profs); lo += chunk {
			hi := lo + chunk
			if hi > len(profs) {
				hi = len(profs)
			}
			if err := in.AddChunk(profs[lo:hi]); err != nil {
				t.Fatalf("chunk %d: ingest: %v", chunk, err)
			}
		}
		snap, err := in.Snapshot()
		if err != nil {
			t.Fatalf("chunk %d: snapshot: %v", chunk, err)
		}
		sel, err := in.Finalize()
		if err != nil {
			t.Fatalf("chunk %d: finalize: %v", chunk, err)
		}
		return run{snap, sel}
	}

	ref := ingest(len(d.fr.Profiles)) // all-at-once
	for _, chunk := range []int{1, 7} {
		got := ingest(chunk)
		if !bytes.Equal(got.snap, ref.snap) {
			t.Errorf("chunk size %d: snapshot differs from all-at-once", chunk)
		}
		if !reflect.DeepEqual(got.sel, ref.sel) {
			t.Errorf("chunk size %d: selection differs from all-at-once:\n got %+v\nwant %+v", chunk, got.sel, ref.sel)
		}
	}
}

// TestCapacityBounds: after every single ingested frame, the stratum
// count respects MaxStrata, every reservoir respects ReservoirCap, and
// reservoirs stay strictly ordered by (priority, frame). Small caps
// force constant merging, the worst case for these invariants.
func TestCapacityBounds(t *testing.T) {
	d := seedResult(t, 2)
	cfg := DefaultConfig()
	cfg.MaxStrata = 6
	cfg.ReservoirCap = 3
	in := newTestIngestor(d, cfg)

	for i := range d.fr.Profiles {
		if err := in.Add(&d.fr.Profiles[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := len(in.strata); got > cfg.MaxStrata {
			t.Fatalf("frame %d: %d strata over cap %d", i, got, cfg.MaxStrata)
		}
		for si, st := range in.strata {
			if len(st.res) == 0 || len(st.res) > cfg.ReservoirCap {
				t.Fatalf("frame %d: stratum %d reservoir size %d out of [1,%d]", i, si, len(st.res), cfg.ReservoirCap)
			}
			for j := 1; j < len(st.res); j++ {
				if !less(st.res[j-1], st.res[j]) {
					t.Fatalf("frame %d: stratum %d reservoir not strictly ordered at %d", i, si, j)
				}
			}
		}
	}
	if in.Merges() == 0 {
		t.Fatalf("tiny caps on %d frames should force merges", len(d.fr.Profiles))
	}
}

// TestBoundedMemory: on a stream at least 10x longer than the stratum
// budget, the ingestor's peak live feature-vector count never exceeds
// the O(strata · reservoir) budget — the similarity matrix (O(frames²))
// and the batch feature matrix (O(frames)) are never materialized. The
// counting allocator is the proof: every vector the package ever holds
// is accounted there.
func TestBoundedMemory(t *testing.T) {
	d := seedResult(t, 1)
	cfg := DefaultConfig()
	cfg.MaxStrata = 8
	cfg.ReservoirCap = 4
	if want := 10 * cfg.MaxStrata; len(d.fr.Profiles) < want {
		t.Fatalf("need a stream >= %d frames (10x the stratum budget), got %d", want, len(d.fr.Profiles))
	}
	in := newTestIngestor(d, cfg)
	budget := in.VectorBudget()
	for i := range d.fr.Profiles {
		if err := in.Add(&d.fr.Profiles[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if in.PeakVectors() > budget {
			t.Fatalf("frame %d: peak %d vectors over budget %d", i, in.PeakVectors(), budget)
		}
	}
	// Live accounting must agree with the structure: one sum per
	// stratum plus its reservoir members.
	want := 0
	for _, st := range in.strata {
		want += 1 + len(st.res)
	}
	if in.LiveVectors() != want {
		t.Fatalf("live vectors %d, structure holds %d", in.LiveVectors(), want)
	}
	t.Logf("%d frames: peak %d vectors (budget %d)", len(d.fr.Profiles), in.PeakVectors(), budget)
}

// TestOnEvictExactlyOnce: the eviction hook fires exactly once for
// every ingested frame that is not a reservoir member at the end, and
// never for frames that are.
func TestOnEvictExactlyOnce(t *testing.T) {
	d := seedResult(t, 3)
	cfg := DefaultConfig()
	cfg.MaxStrata = 6
	cfg.ReservoirCap = 3
	evicted := map[int]int{}
	cfg.OnEvict = func(frame int) { evicted[frame]++ }
	in := newTestIngestor(d, cfg)
	if err := in.AddChunk(d.fr.Profiles); err != nil {
		t.Fatal(err)
	}
	members := map[int]bool{}
	for _, st := range in.strata {
		for _, e := range st.res {
			members[e.frame] = true
		}
	}
	for f, n := range evicted {
		if n != 1 {
			t.Errorf("frame %d evicted %d times", f, n)
		}
		if members[f] {
			t.Errorf("frame %d both evicted and a reservoir member", f)
		}
	}
	for f := 0; f < len(d.fr.Profiles); f++ {
		if !members[f] && evicted[f] == 0 {
			t.Errorf("frame %d neither evicted nor a member", f)
		}
	}
}

// TestSnapshotRoundTrip: snapshotting at any point mid-stream and
// restoring into a fresh ingestor continues bit-identically — the same
// final snapshot and selection as never having stopped.
func TestSnapshotRoundTrip(t *testing.T) {
	d := seedResult(t, 2)
	cfg := DefaultConfig()
	cfg.Seed = 2
	profs := d.fr.Profiles
	n := len(profs)

	full := newTestIngestor(d, cfg)
	if err := full.AddChunk(profs); err != nil {
		t.Fatal(err)
	}
	wantSnap, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := full.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, n / 3, n / 2, n - 1, n} {
		a := newTestIngestor(d, cfg)
		if err := a.AddChunk(profs[:cut]); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: snapshot: %v", cut, err)
		}
		b := newTestIngestor(d, cfg)
		if err := b.Restore(snap); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if b.Frames() != cut {
			t.Fatalf("cut %d: restored %d frames", cut, b.Frames())
		}
		resnap, err := b.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: re-snapshot: %v", cut, err)
		}
		if !bytes.Equal(snap, resnap) {
			t.Fatalf("cut %d: snapshot not idempotent across restore", cut)
		}
		if err := b.AddChunk(profs[cut:]); err != nil {
			t.Fatalf("cut %d: continue: %v", cut, err)
		}
		gotSnap, err := b.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: final snapshot: %v", cut, err)
		}
		if !bytes.Equal(gotSnap, wantSnap) {
			t.Errorf("cut %d: resumed final snapshot differs from uninterrupted", cut)
		}
		gotSel, err := b.Finalize()
		if err != nil {
			t.Fatalf("cut %d: finalize: %v", cut, err)
		}
		if !reflect.DeepEqual(gotSel, wantSel) {
			t.Errorf("cut %d: resumed selection differs from uninterrupted", cut)
		}
	}
}

// TestRestoreRejects: malformed, mismatched or inconsistent snapshots
// are rejected without corrupting the ingestor.
func TestRestoreRejects(t *testing.T) {
	d := seedResult(t, 1)
	cfg := DefaultConfig()
	in := newTestIngestor(d, cfg)
	if err := in.AddChunk(d.fr.Profiles[:40]); err != nil {
		t.Fatal(err)
	}
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*state)) []byte {
		var st state
		if err := json.Unmarshal(snap, &st); err != nil {
			t.Fatal(err)
		}
		f(&st)
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := map[string][]byte{
		"truncated":       snap[:len(snap)/2],
		"not json":        []byte("strata ahoy"),
		"wrong version":   mutate(func(st *state) { st.Version = 99 }),
		"wrong config":    mutate(func(st *state) { st.ConfigHash = "stream-deadbeef" }),
		"negative n":      mutate(func(st *state) { st.N = -1 }),
		"over strata cap": mutate(func(st *state) { st.Strata = make([]stratumState, cfg.MaxStrata+1) }),
		"empty reservoir": mutate(func(st *state) { st.Strata[0].Res = nil }),
		"bad dims":        mutate(func(st *state) { st.Strata[0].Sum = []float64{1} }),
		"unordered": mutate(func(st *state) {
			r := st.Strata[0].Res
			if len(r) < 2 {
				t.Skip("needs 2 reservoir entries")
			}
			r[0], r[1] = r[1], r[0]
		}),
		"zero count": mutate(func(st *state) { st.Strata[0].Count = 0 }),
	}
	for name, data := range cases {
		fresh := newTestIngestor(d, cfg)
		if err := fresh.Restore(data); err == nil {
			t.Errorf("%s: restore accepted", name)
		}
	}

	// A non-fresh ingestor refuses restore outright.
	if err := in.Restore(snap); err == nil {
		t.Error("restore into a non-fresh ingestor accepted")
	}

	// Different seed means a different config hash: cross-seed resume is
	// a config mismatch, not silent corruption.
	other := DefaultConfig()
	other.Seed = 7
	if err := newTestIngestor(d, other).Restore(snap); err == nil {
		t.Error("restore across seeds accepted")
	}
}

// TestAssignmentsConsistent: under TrackAssignments, every frame
// resolves to a final stratum, and per-stratum assignment counts equal
// the strata's extrapolation weights.
func TestAssignmentsConsistent(t *testing.T) {
	d := seedResult(t, 1)
	cfg := DefaultConfig()
	cfg.TrackAssignments = true
	in := newTestIngestor(d, cfg)
	if err := in.AddChunk(d.fr.Profiles); err != nil {
		t.Fatal(err)
	}
	sel, err := in.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assign, err := in.Assignments()
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(d.fr.Profiles) {
		t.Fatalf("%d assignments for %d frames", len(assign), len(d.fr.Profiles))
	}
	counts := make([]int, len(sel.Strata))
	for f, s := range assign {
		if s < 0 || s >= len(sel.Strata) {
			t.Fatalf("frame %d assigned to stratum %d of %d", f, s, len(sel.Strata))
		}
		counts[s]++
	}
	for i, st := range sel.Strata {
		if counts[i] != st.Count {
			t.Errorf("stratum %d: %d assigned frames, weight %d", i, counts[i], st.Count)
		}
	}
	// Untracked ingestors refuse, rather than returning garbage.
	plain := newTestIngestor(d, DefaultConfig())
	if err := plain.AddChunk(d.fr.Profiles[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Assignments(); err == nil {
		t.Error("Assignments without TrackAssignments accepted")
	}
}

// TestPlanAndEstimateDegradation: the substitution ladder and the
// lost-stratum weight rescale mirror the batch degradation rules.
func TestPlanAndEstimateDegradation(t *testing.T) {
	sel := &Selection{
		Workload: "x",
		Frames:   10,
		Strata: []Stratum{
			{Label: 0, Count: 6, Representative: 2, Alternates: []int{5, 7}},
			{Label: 1, Count: 4, Representative: 3},
		},
	}
	stats := map[int]tbr.FrameStats{
		2: {Cycles: 100},
		3: {Cycles: 50},
		5: {Cycles: 110},
	}

	// Healthy: 6*100 + 4*50 = 800.
	est, err := sel.Estimate(stats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != 800 {
		t.Fatalf("healthy estimate %d cycles, want 800", est.Cycles)
	}

	// Representative 2 quarantined: alternate 5 stands in with full
	// weight (6*110 + 4*50 = 860) and the substitution is reported.
	q := map[int]bool{2: true}
	est, deg, err := sel.EstimateWith(sel.Plan(q), stats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != 860 {
		t.Fatalf("substituted estimate %d cycles, want 860", est.Cycles)
	}
	if !deg.Degraded() || len(deg.Substitutions) != 1 || deg.Substitutions[0] != (StreamSubstitution{Stratum: 0, From: 2, To: 5}) {
		t.Fatalf("degradation %+v, want one 2->5 substitution", deg)
	}

	// Whole first reservoir quarantined: stratum lost, surviving 4-frame
	// stratum rescales to the full 10 frames (50*4 * 10/4 = 500).
	q = map[int]bool{2: true, 5: true, 7: true}
	est, deg, err = sel.EstimateWith(sel.Plan(q), stats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != 500 {
		t.Fatalf("lost-stratum estimate %d cycles, want 500", est.Cycles)
	}
	if len(deg.LostStrata) != 1 || deg.LostStrata[0] != 0 || deg.CoveredFrames != 4 {
		t.Fatalf("degradation %+v, want stratum 0 lost with 4 covered frames", deg)
	}

	// Everything quarantined: an explicit error, never a zero estimate.
	q = map[int]bool{2: true, 5: true, 7: true, 3: true}
	if _, _, err := sel.EstimateWith(sel.Plan(q), stats); err == nil {
		t.Fatal("all-lost estimate accepted")
	}
}

// TestShapeMismatchRejected: profiles with the wrong shader-count shape
// are rejected without advancing or corrupting the stream.
func TestShapeMismatchRejected(t *testing.T) {
	d := seedResult(t, 1)
	in := newTestIngestor(d, DefaultConfig())
	if err := in.AddChunk(d.fr.Profiles[:3]); err != nil {
		t.Fatal(err)
	}
	before, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := funcsim.FrameProfile{VSCount: []uint64{1}, FSCount: []uint64{2, 3}}
	if err := in.Add(&bad); err == nil {
		t.Fatal("mismatched profile accepted")
	}
	after, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected profile mutated ingestor state")
	}
}

// TestSingleStratumCap: MaxStrata = 1 is degenerate but must stay
// well-defined — at capacity there is no pair of strata to merge, so
// the lone stratum absorbs every frame and the spawn radius widens to
// each tolerated distance (this used to panic with an index out of
// range in mergeClosest on the second distinct frame). The invariants
// everything else relies on — chunk-split determinism, capacity and
// reservoir bounds, a usable selection — must all still hold.
func TestSingleStratumCap(t *testing.T) {
	d := seedResult(t, 1)
	cfg := DefaultConfig()
	cfg.MaxStrata = 1
	cfg.ReservoirCap = 3

	ingest := func(chunk int) (*Ingestor, []byte) {
		in := newTestIngestor(d, cfg)
		profs := d.fr.Profiles
		for lo := 0; lo < len(profs); lo += chunk {
			hi := lo + chunk
			if hi > len(profs) {
				hi = len(profs)
			}
			if err := in.AddChunk(profs[lo:hi]); err != nil {
				t.Fatalf("chunk %d: ingest: %v", chunk, err)
			}
		}
		snap, err := in.Snapshot()
		if err != nil {
			t.Fatalf("chunk %d: snapshot: %v", chunk, err)
		}
		return in, snap
	}

	in, ref := ingest(len(d.fr.Profiles))
	if got := in.NumStrata(); got != 1 {
		t.Fatalf("%d strata under a cap of 1", got)
	}
	if in.Merges() != 0 {
		t.Fatalf("%d merges recorded with a single stratum", in.Merges())
	}
	if got := len(in.strata[0].res); got == 0 || got > cfg.ReservoirCap {
		t.Fatalf("reservoir size %d out of [1,%d]", got, cfg.ReservoirCap)
	}
	sel, err := in.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if sel.Frames != len(d.fr.Profiles) || sel.Strata[0].Count != sel.Frames {
		t.Fatalf("selection covers %d of %d frames", sel.Strata[0].Count, len(d.fr.Profiles))
	}
	for _, chunk := range []int{1, 7} {
		if _, snap := ingest(chunk); !bytes.Equal(snap, ref) {
			t.Errorf("chunk size %d: snapshot differs from all-at-once", chunk)
		}
	}
}
