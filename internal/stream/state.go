package stream

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// stateVersion gates the snapshot decoder.
const stateVersion = 1

// state is the serialized form of an Ingestor: everything Add depends
// on, and nothing else. JSON float64 encoding is shortest-roundtrip
// exact, so Restore(Snapshot(in)) continues bit-identically — the
// foundation of the byte-identical mid-stream resume guarantee.
type state struct {
	Version    int            `json:"version"`
	ConfigHash string         `json:"configHash"`
	N          int            `json:"n"`
	GroupSum   [3]float64     `json:"groupSum"`
	SpawnR     float64        `json:"spawnR"`
	NextLabel  int            `json:"nextLabel"`
	Merges     int            `json:"merges"`
	Strata     []stratumState `json:"strata"`
	// Assignment tracking state, present only under TrackAssignments.
	Labels  []int          `json:"labels,omitempty"`
	Parents map[string]int `json:"parents,omitempty"`
}

type stratumState struct {
	Label int        `json:"label"`
	Count int        `json:"count"`
	Sum   []float64  `json:"sum"`
	Res   []resState `json:"res"`
}

type resState struct {
	Frame int       `json:"frame"`
	Pri   uint64    `json:"pri"`
	Vec   []float64 `json:"vec"`
}

// ConfigHash fingerprints everything that must match for a snapshot to
// be resumable: the capacity/seed/feature configuration and the static
// shader weights of the workload. A snapshot taken under any other
// hash is rejected — resuming it would silently mix incompatible
// characterizations.
func (in *Ingestor) ConfigHash() string {
	b, err := json.Marshal(struct {
		Name             string
		MaxStrata        int
		ReservoirCap     int
		Seed             uint64
		Feature          any
		TrackAssignments bool
		VSInstr, FSInstr []float64
		HasPrim          bool
	}{in.name, in.cfg.MaxStrata, in.cfg.ReservoirCap, in.cfg.Seed,
		in.cfg.Feature, in.cfg.TrackAssignments, in.vsInstr, in.fsInstr, in.hasPrim})
	if err != nil {
		panic(fmt.Sprintf("stream: config hash: %v", err)) // plain data; cannot fail
	}
	sum := sha256.Sum256(b)
	return "stream-" + hex.EncodeToString(sum[:12])
}

// Snapshot serializes the ingestor's full progress. The encoding is
// canonical — strata in label order, reservoirs in their maintained
// (pri, frame) order, union-find keys sorted by JSON map marshaling —
// so equal states produce equal bytes.
func (in *Ingestor) Snapshot() ([]byte, error) {
	st := state{
		Version:    stateVersion,
		ConfigHash: in.ConfigHash(),
		N:          in.n,
		GroupSum:   in.groupSum,
		SpawnR:     in.spawnR,
		NextLabel:  in.nextLabel,
		Merges:     in.merges,
	}
	strata := make([]*stratum, len(in.strata))
	copy(strata, in.strata)
	sort.Slice(strata, func(i, j int) bool { return strata[i].label < strata[j].label })
	for _, s := range strata {
		ss := stratumState{Label: s.label, Count: s.count, Sum: s.sum}
		for _, e := range s.res {
			ss.Res = append(ss.Res, resState{Frame: e.frame, Pri: e.pri, Vec: e.vec})
		}
		st.Strata = append(st.Strata, ss)
	}
	if in.cfg.TrackAssignments {
		st.Labels = in.labels
		st.Parents = map[string]int{}
		for k, v := range in.parent {
			st.Parents[fmt.Sprint(k)] = v
		}
	}
	return json.Marshal(st)
}

// Restore rebuilds an ingestor mid-stream from a snapshot. The
// receiver must be freshly built by NewIngestor with the same name,
// static costs and configuration the snapshot was taken under —
// enforced by the config hash — and must not have ingested anything
// yet. Ingesting the remaining frames then yields state bit-identical
// to never having stopped.
func (in *Ingestor) Restore(data []byte) error {
	if in.n != 0 || len(in.strata) != 0 {
		return fmt.Errorf("stream: restore into a non-fresh ingestor")
	}
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("stream: corrupt snapshot: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("stream: snapshot version %d (want %d)", st.Version, stateVersion)
	}
	if want := in.ConfigHash(); st.ConfigHash != want {
		return fmt.Errorf("stream: snapshot config %q does not match ingestor %q", st.ConfigHash, want)
	}
	if st.N < 0 || st.NextLabel < 0 || st.Merges < 0 {
		return fmt.Errorf("stream: snapshot has negative counters")
	}
	if len(st.Strata) > in.cfg.MaxStrata {
		return fmt.Errorf("stream: snapshot has %d strata over cap %d", len(st.Strata), in.cfg.MaxStrata)
	}
	strata := make([]*stratum, 0, len(st.Strata))
	for i, ss := range st.Strata {
		if ss.Count <= 0 || len(ss.Sum) != in.dims {
			return fmt.Errorf("stream: snapshot stratum %d malformed", i)
		}
		if len(ss.Res) == 0 || len(ss.Res) > in.cfg.ReservoirCap {
			return fmt.Errorf("stream: snapshot stratum %d reservoir size %d out of [1,%d]", i, len(ss.Res), in.cfg.ReservoirCap)
		}
		s := &stratum{label: ss.Label, count: ss.Count, sum: in.alloc.get(in.dims)}
		copy(s.sum, ss.Sum)
		for j, r := range ss.Res {
			if len(r.Vec) != in.dims {
				return fmt.Errorf("stream: snapshot stratum %d reservoir %d has %d dims (want %d)", i, j, len(r.Vec), in.dims)
			}
			if j > 0 && !less(resEntry{frame: ss.Res[j-1].Frame, pri: ss.Res[j-1].Pri}, resEntry{frame: r.Frame, pri: r.Pri}) {
				return fmt.Errorf("stream: snapshot stratum %d reservoir not strictly ordered", i)
			}
			vec := in.alloc.get(in.dims)
			copy(vec, r.Vec)
			s.res = append(s.res, resEntry{frame: r.Frame, pri: r.Pri, vec: vec})
		}
		strata = append(strata, s)
	}
	// Snapshots store strata in label order; live order is spawn order,
	// which label order reproduces exactly (labels are assigned by an
	// increasing counter and survivors keep the lower-half label order).
	in.strata = strata
	in.n = st.N
	in.groupSum = st.GroupSum
	in.spawnR = st.SpawnR
	in.nextLabel = st.NextLabel
	in.merges = st.Merges
	if in.cfg.TrackAssignments {
		if len(st.Labels) != st.N {
			return fmt.Errorf("stream: snapshot has %d labels for %d frames", len(st.Labels), st.N)
		}
		in.labels = st.Labels
		for k, v := range st.Parents {
			var key int
			if _, err := fmt.Sscanf(k, "%d", &key); err != nil {
				return fmt.Errorf("stream: snapshot parent key %q: %w", k, err)
			}
			in.parent[key] = v
		}
	}
	return nil
}
