package stream

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the streaming selection goldens")

// goldenSeed pins everything the streaming first phase decides for one
// oracle seed, alongside the batch pipeline's view of the same frames:
// any change to stratification, reservoir policy, normalization or the
// feature vectors shows up as a golden diff, reviewed rather than
// silently absorbed.
type goldenSeed struct {
	Seed      uint64    `json:"seed"`
	Workload  string    `json:"workload"`
	Frames    int       `json:"frames"`
	Merges    int       `json:"merges"`
	Strata    []Stratum `json:"strata"`
	BatchK    int       `json:"batchK"`
	BatchReps []int     `json:"batchReps"`
	// Agreement is the Rand index between the streaming strata and the
	// batch clustering — pairwise co-membership agreement over all
	// frames. Deterministic, so pinned exactly.
	Agreement float64 `json:"agreement"`
}

// pairAgreement is the Rand index of two partitions of the same frames.
func pairAgreement(a, b []int) float64 {
	n := len(a)
	if n < 2 {
		return 1
	}
	agree, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(pairs)
}

// TestGoldenStreamingSelection computes the streaming and batch
// selections for oracle seeds 1-3 and compares against the committed
// goldens under testdata/. Regenerate with `go test -run
// TestGoldenStreamingSelection -update ./internal/stream`.
func TestGoldenStreamingSelection(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		d := seedResult(t, seed)

		scfg := DefaultConfig()
		scfg.Seed = seed
		scfg.TrackAssignments = true
		in := newTestIngestor(d, scfg)
		if err := in.AddChunk(d.fr.Profiles); err != nil {
			t.Fatalf("seed %d: ingest: %v", seed, err)
		}
		sel, err := in.Finalize()
		if err != nil {
			t.Fatalf("seed %d: finalize: %v", seed, err)
		}
		assign, err := in.Assignments()
		if err != nil {
			t.Fatalf("seed %d: assignments: %v", seed, err)
		}

		// Batch view of the identical frames, exactly as the oracle runs
		// it (the batch seed is the methodology default, not the
		// workload seed).
		mcfg := core.DefaultConfig()
		fs, err := core.BuildFeatures(d.fr, mcfg.Feature)
		if err != nil {
			t.Fatalf("seed %d: features: %v", seed, err)
		}
		bsel, err := core.Select(fs, mcfg)
		if err != nil {
			t.Fatalf("seed %d: batch select: %v", seed, err)
		}

		got := goldenSeed{
			Seed:      seed,
			Workload:  sel.Workload,
			Frames:    sel.Frames,
			Merges:    sel.Merges,
			Strata:    sel.Strata,
			BatchK:    bsel.Clusters.K,
			BatchReps: bsel.Representatives,
			Agreement: pairAgreement(bsel.Clusters.Assign, assign),
		}
		if got.Agreement < 0.9 {
			t.Errorf("seed %d: streaming/batch agreement %.3f below 0.9", seed, got.Agreement)
		}

		path := filepath.Join("testdata", goldenName(seed))
		if *updateGolden {
			b, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed %d: %v (regenerate with -update)", seed, err)
		}
		var want goldenSeed
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("seed %d: corrupt golden: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: selection deviates from golden %s (regenerate with -update if intended)\n got strata=%d merges=%d agreement=%.4f\nwant strata=%d merges=%d agreement=%.4f",
				seed, path, len(got.Strata), got.Merges, got.Agreement, len(want.Strata), want.Merges, want.Agreement)
		}
	}
}

func goldenName(seed uint64) string {
	return "stream_seed" + string('0'+rune(seed)) + ".json"
}
