package stream

// vecAccount is the ingestor's feature-vector allocator. Every raw
// per-frame vector the ingestor holds — stratum sums, reservoir
// members, the per-frame scratch — is obtained from get and returned
// through put, so Live is exactly the number of vectors alive and Peak
// its high-water mark. The bounded-memory tests assert Peak against
// the O(strata + reservoir) budget; nothing about the accounting is
// test-only, it is the package's own proof obligation that it never
// materializes per-frame state for the whole stream.
type vecAccount struct {
	live int
	peak int
	free [][]float64
}

// get returns a zeroed vector of length n, reusing a freed one when
// available.
func (a *vecAccount) get(n int) []float64 {
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	if k := len(a.free); k > 0 {
		v := a.free[k-1]
		a.free = a.free[:k-1]
		if cap(v) >= n {
			v = v[:n]
			for i := range v {
				v[i] = 0
			}
			return v
		}
	}
	return make([]float64, n)
}

// put releases a vector back to the account.
func (a *vecAccount) put(v []float64) {
	a.live--
	a.free = append(a.free, v)
}
