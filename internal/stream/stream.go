// Package stream is the online first phase of MEGsim for unbounded
// frame sequences: it consumes per-frame functional profiles one at a
// time and maintains a bounded set of strata — clusters with an
// incrementally updated centroid and a bounded reservoir of candidate
// representative frames — in O(strata · reservoir) memory, however
// long the stream runs. The batch pipeline materializes the full N × D
// characteristic matrix and (for Fig. 5) an N × N similarity matrix;
// the streaming phase materializes neither: each frame's vector is
// folded into a running centroid and either retained in one stratum's
// reservoir or discarded on the spot.
//
// The stratifier is a single-pass nearest-centroid scheme with a
// growing spawn radius (the BIRCH/stream-k-means family): a frame
// joins the nearest stratum when it is within the radius, spawns a new
// stratum when capacity allows, and otherwise forces the two closest
// strata to merge — which raises the radius to the merged distance, so
// the structure coarsens exactly as fast as capacity demands.
// Reservoir membership uses deterministic bottom-k hash priorities, so
// the retained sample of each stratum is uniform over its members yet
// independent of arrival interleaving and merge order.
//
// Everything is a deterministic function of (seed, frame sequence):
// the same stream split into any chunk sizes — or checkpointed and
// resumed mid-stream — yields bit-identical strata, reservoirs and
// selections. The differential oracle (internal/check) gates the
// result against batch MEGsim on randomized workloads.
package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/shader"
)

// Default capacity parameters: a stratum budget sized to the cluster
// counts the batch BIC search picks on oracle-scale workloads (30-45),
// and a reservoir deep enough to survive representative quarantine
// with in-stratum substitutes.
const (
	DefaultMaxStrata    = 32
	DefaultReservoirCap = 8
)

// Config parameterizes the streaming first phase.
type Config struct {
	// MaxStrata bounds the number of strata (0 = DefaultMaxStrata).
	// When a new frame needs a stratum beyond the cap, the two closest
	// existing strata merge first.
	MaxStrata int
	// ReservoirCap bounds each stratum's reservoir of candidate
	// representative frames (0 = DefaultReservoirCap).
	ReservoirCap int
	// Seed drives the reservoir hash priorities. Same seed, same
	// stream, same result — regardless of chunking.
	Seed uint64
	// Feature is the vector-of-characteristics configuration, shared
	// with the batch pipeline (zero value = core.DefaultFeatureConfig).
	Feature core.FeatureConfig
	// TrackAssignments retains a per-frame stratum label (O(frames)
	// memory — oracle and test use only; the bounded-memory guarantee
	// applies to the default, disabled, mode).
	TrackAssignments bool
	// OnEvict, when non-nil, is called exactly once for every ingested
	// frame that ceases to be a reservoir member (including frames that
	// never enter one). Frames never evicted are reservoir members at
	// finalization. The chunked-upload service uses this to release
	// retained frame payloads the selection can no longer need.
	OnEvict func(frame int)
}

// DefaultConfig returns the paper-faithful streaming configuration.
func DefaultConfig() Config {
	return Config{
		MaxStrata:    DefaultMaxStrata,
		ReservoirCap: DefaultReservoirCap,
		Seed:         1,
		Feature:      core.DefaultFeatureConfig(),
	}
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.MaxStrata <= 0 {
		c.MaxStrata = DefaultMaxStrata
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = DefaultReservoirCap
	}
	if c.Feature == (core.FeatureConfig{}) {
		c.Feature = core.DefaultFeatureConfig()
	}
	return c
}

// resEntry is one reservoir member: the frame's arrival index, its
// hash priority, and its raw (unnormalized) characteristic vector.
type resEntry struct {
	frame int
	pri   uint64
	vec   []float64
}

// stratum is one online cluster: an incrementally maintained raw-sum
// centroid and a bottom-k reservoir of member frames.
type stratum struct {
	// label is the stratum's stable identity across merges (the
	// surviving stratum keeps its label; absorbed labels redirect).
	label int
	// count is the number of member frames — the extrapolation weight.
	count int
	// sum is the raw vector sum of all members; centroid = sum/count.
	sum []float64
	// res holds the bottom-ReservoirCap members by (pri, frame),
	// ascending — a uniform sample of the stratum independent of
	// arrival and merge order.
	res []resEntry
}

// Ingestor is the streaming stratifier. It is single-goroutine, like a
// funcsim pass; concurrency lives above it (the service ingests chunks
// under the session lock).
type Ingestor struct {
	cfg  Config
	name string

	// Static shader weights (Section III-B), fixed before frame one.
	vsInstr, fsInstr []float64
	numVS, numFS     int
	hasPrim          bool
	dims             int

	// Running normalization state: frames seen and per-group raw sums.
	// The group scale k_g = weight_g · n / S_g is the streaming twin of
	// the batch scaleGroup factor, recomputed as the stream grows.
	n        int
	groupSum [3]float64

	strata []*stratum
	// spawnR is the squared normalized spawn radius: frames farther
	// than this from every centroid spawn a new stratum. It only grows
	// (to the distance of each forced merge), so the partition coarsens
	// monotonically.
	spawnR    float64
	nextLabel int
	merges    int

	// Assignment tracking (TrackAssignments only): per-frame absorb
	// label plus a label union-find folded by merges.
	labels []int
	parent map[int]int

	alloc vecAccount
}

// NewIngestor builds an ingestor over a workload's static shader costs
// — the only global facts the first phase needs before frames arrive.
func NewIngestor(name string, vsStatic, fsStatic []shader.Cost, cfg Config) *Ingestor {
	cfg = cfg.withDefaults()
	in := &Ingestor{
		cfg:     cfg,
		name:    name,
		vsInstr: core.InstrWeights(vsStatic, cfg.Feature.UseTextureWeights),
		fsInstr: core.InstrWeights(fsStatic, cfg.Feature.UseTextureWeights),
		numVS:   len(vsStatic),
		numFS:   len(fsStatic),
		hasPrim: cfg.Feature.IncludePrim,
	}
	in.dims = in.numVS + in.numFS
	if in.hasPrim {
		in.dims++
	}
	if cfg.TrackAssignments {
		in.parent = map[int]int{}
	}
	return in
}

// Name returns the workload name the ingestor was built for.
func (in *Ingestor) Name() string { return in.name }

// Frames returns how many frames have been ingested. The next frame's
// identity is this value — frames are identified by arrival position,
// never by the profile's own Frame field (a hostile stream can repeat
// or shuffle those freely).
func (in *Ingestor) Frames() int { return in.n }

// NumStrata returns the current stratum count.
func (in *Ingestor) NumStrata() int { return len(in.strata) }

// Merges returns how many forced stratum merges have happened.
func (in *Ingestor) Merges() int { return in.merges }

// LiveVectors and PeakVectors expose the allocator accounting the
// bounded-memory tests assert on: the number of feature vectors
// currently (and maximally ever) alive inside the ingestor.
func (in *Ingestor) LiveVectors() int { return in.alloc.live }
func (in *Ingestor) PeakVectors() int { return in.alloc.peak }

// VectorBudget is the allocator ceiling implied by the configuration:
// one sum and up to ReservoirCap members per stratum, one scratch
// vector in flight, and one transient sum during a merge. Ingest never
// exceeds it, no matter how long the stream runs.
func (in *Ingestor) VectorBudget() int {
	return in.cfg.MaxStrata*(in.cfg.ReservoirCap+1) + 2
}

// Add ingests one frame profile. The profile's count-vector shape must
// match the static costs the ingestor was built with; a mismatched
// profile is rejected without corrupting any state.
func (in *Ingestor) Add(p *funcsim.FrameProfile) error {
	if len(p.VSCount) != in.numVS || len(p.FSCount) != in.numFS {
		return fmt.Errorf("stream: profile has %d/%d shader counts, ingestor wants %d/%d",
			len(p.VSCount), len(p.FSCount), in.numVS, in.numFS)
	}
	frame := in.n

	// Raw characteristic vector — counts × static shader weights, the
	// pre-normalization form of the batch matrix row. Raw vectors are
	// what strata store; normalization is applied inside the distance,
	// so stored state never needs rescaling as n and the sums grow.
	v := in.alloc.get(in.dims)
	var gs [3]float64
	for s, cnt := range p.VSCount {
		v[s] = float64(cnt) * in.vsInstr[s]
		gs[0] += v[s]
	}
	for s, cnt := range p.FSCount {
		v[in.numVS+s] = float64(cnt) * in.fsInstr[s]
		gs[1] += v[in.numVS+s]
	}
	if in.hasPrim {
		v[in.dims-1] = float64(p.PrimsVisible)
		gs[2] += v[in.dims-1]
	}
	in.n++
	for g := range gs {
		in.groupSum[g] += gs[g]
	}

	k := in.scales()
	best, bestD := -1, 0.0
	for i, st := range in.strata {
		d := in.dist2ToCentroid(v, st, k)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}

	switch {
	case best >= 0 && bestD <= in.spawnR:
		in.absorb(in.strata[best], frame, v)
	case len(in.strata) < in.cfg.MaxStrata:
		in.spawn(frame, v)
	case len(in.strata) < 2:
		// At capacity with a single stratum (MaxStrata = 1): there is no
		// pair to merge, so the frame is absorbed directly and the spawn
		// radius widens to the distance just tolerated — exactly what
		// merging the frame's would-be singleton into the survivor would
		// have produced.
		if bestD > in.spawnR {
			in.spawnR = bestD
		}
		in.absorb(in.strata[best], frame, v)
	default:
		// At capacity: collapse the two closest strata, widen the spawn
		// radius to the distance just tolerated, then spawn. The radius
		// growth is what keeps merges rare once the stream's diversity
		// has been seen.
		d := in.mergeClosest(k)
		if d > in.spawnR {
			in.spawnR = d
		}
		in.spawn(frame, v)
	}
	return nil
}

// AddChunk ingests a batch of profiles; identical to calling Add in
// order, which is why any chunking of a stream yields identical state.
func (in *Ingestor) AddChunk(ps []funcsim.FrameProfile) error {
	for i := range ps {
		if err := in.Add(&ps[i]); err != nil {
			return fmt.Errorf("stream: chunk profile %d: %w", i, err)
		}
	}
	return nil
}

// scales returns the per-group normalization factors k_g =
// weight_g · n / S_g — the streaming twin of the batch scaleGroup
// factor weight/groupSum·N, computed over the frames seen so far. A
// group with zero mass has every coordinate zero, so its factor is
// irrelevant and set to 0.
func (in *Ingestor) scales() [3]float64 {
	w := in.cfg.Feature.Weights
	var k [3]float64
	n := float64(in.n)
	if in.groupSum[0] > 0 {
		k[0] = w.Geometry * n / in.groupSum[0]
	}
	if in.groupSum[1] > 0 {
		k[1] = w.Raster * n / in.groupSum[1]
	}
	if in.groupSum[2] > 0 {
		k[2] = w.Tiling * n / in.groupSum[2]
	}
	return k
}

// dist2ToCentroid is the squared normalized distance from raw vector v
// to st's centroid: per group g, k_g² · Σ_{j∈g} (v_j − sum_j/count)².
func (in *Ingestor) dist2ToCentroid(v []float64, st *stratum, k [3]float64) float64 {
	inv := 1 / float64(st.count)
	var d0, d1, d2 float64
	for j := 0; j < in.numVS; j++ {
		dd := v[j] - st.sum[j]*inv
		d0 += dd * dd
	}
	for j := in.numVS; j < in.numVS+in.numFS; j++ {
		dd := v[j] - st.sum[j]*inv
		d1 += dd * dd
	}
	if in.hasPrim {
		dd := v[in.dims-1] - st.sum[in.dims-1]*inv
		d2 = dd * dd
	}
	return k[0]*k[0]*d0 + k[1]*k[1]*d1 + k[2]*k[2]*d2
}

// dist2Centroids is the squared normalized distance between two
// strata's centroids.
func (in *Ingestor) dist2Centroids(a, b *stratum, k [3]float64) float64 {
	ia, ib := 1/float64(a.count), 1/float64(b.count)
	var d0, d1, d2 float64
	for j := 0; j < in.numVS; j++ {
		dd := a.sum[j]*ia - b.sum[j]*ib
		d0 += dd * dd
	}
	for j := in.numVS; j < in.numVS+in.numFS; j++ {
		dd := a.sum[j]*ia - b.sum[j]*ib
		d1 += dd * dd
	}
	if in.hasPrim {
		dd := a.sum[in.dims-1]*ia - b.sum[in.dims-1]*ib
		d2 = dd * dd
	}
	return k[0]*k[0]*d0 + k[1]*k[1]*d1 + k[2]*k[2]*d2
}

// absorb folds frame (raw vector v) into st: centroid update plus a
// bottom-k reservoir offer. The vector is retained only if the frame
// wins a reservoir slot; otherwise it is freed and the frame evicted
// immediately.
func (in *Ingestor) absorb(st *stratum, frame int, v []float64) {
	st.count++
	for j, x := range v {
		st.sum[j] += x
	}
	in.recordLabel(frame, st.label)
	in.offer(st, resEntry{frame: frame, pri: framePriority(in.cfg.Seed, frame), vec: v})
}

// offer inserts e into st's bottom-k reservoir, evicting the largest
// priority when over capacity. The reservoir stays sorted ascending by
// (pri, frame), so membership is a pure function of the member set.
func (in *Ingestor) offer(st *stratum, e resEntry) {
	i := len(st.res)
	for i > 0 && less(e, st.res[i-1]) {
		i--
	}
	st.res = append(st.res, resEntry{})
	copy(st.res[i+1:], st.res[i:])
	st.res[i] = e
	if len(st.res) > in.cfg.ReservoirCap {
		drop := st.res[len(st.res)-1]
		st.res = st.res[:len(st.res)-1]
		in.evict(drop)
	}
}

func less(a, b resEntry) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.frame < b.frame
}

// evict releases a reservoir entry's vector and notifies the eviction
// hook: this frame can never become a representative.
func (in *Ingestor) evict(e resEntry) {
	in.alloc.put(e.vec)
	if in.cfg.OnEvict != nil {
		in.cfg.OnEvict(e.frame)
	}
}

// spawn creates a fresh stratum seeded by frame's vector. The vector
// is copied into the sum and also becomes the first reservoir member.
func (in *Ingestor) spawn(frame int, v []float64) {
	sum := in.alloc.get(in.dims)
	copy(sum, v)
	st := &stratum{
		label: in.nextLabel,
		count: 1,
		sum:   sum,
		res:   []resEntry{{frame: frame, pri: framePriority(in.cfg.Seed, frame), vec: v}},
	}
	in.nextLabel++
	in.recordLabel(frame, st.label)
	in.strata = append(in.strata, st)
}

// mergeClosest collapses the closest pair of strata (ties break toward
// the lowest index pair, keeping the operation deterministic) and
// returns their squared centroid distance. The lower-indexed stratum
// survives; the union's reservoir is re-selected bottom-k, so the
// merged reservoir is exactly what a single stratum covering both
// member sets would hold.
func (in *Ingestor) mergeClosest(k [3]float64) float64 {
	bi, bj, bd := -1, -1, 0.0
	for i := 0; i < len(in.strata); i++ {
		for j := i + 1; j < len(in.strata); j++ {
			d := in.dist2Centroids(in.strata[i], in.strata[j], k)
			if bi < 0 || d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	a, b := in.strata[bi], in.strata[bj]
	a.count += b.count
	for j, x := range b.sum {
		a.sum[j] += x
	}
	in.alloc.put(b.sum)
	for _, e := range b.res {
		in.offer(a, e)
	}
	if in.parent != nil {
		in.parent[b.label] = a.label
	}
	in.strata = append(in.strata[:bj], in.strata[bj+1:]...)
	in.merges++
	return bd
}

// recordLabel appends the frame's absorb-time stratum label
// (TrackAssignments only).
func (in *Ingestor) recordLabel(frame, label int) {
	if in.cfg.TrackAssignments {
		// Frames arrive in order, so the slice index is the frame.
		_ = frame
		in.labels = append(in.labels, label)
	}
}

// Assignments resolves every ingested frame's final stratum index
// (position in Finalize's Strata slice) through the merge union-find.
// Only available under TrackAssignments.
func (in *Ingestor) Assignments() ([]int, error) {
	if !in.cfg.TrackAssignments {
		return nil, fmt.Errorf("stream: assignments not tracked (Config.TrackAssignments)")
	}
	index := make(map[int]int, len(in.strata))
	for i, st := range in.strata {
		index[st.label] = i
	}
	out := make([]int, len(in.labels))
	for f, lbl := range in.labels {
		out[f] = index[in.resolve(lbl)]
	}
	return out, nil
}

// resolve follows the merge union-find to a surviving label.
func (in *Ingestor) resolve(label int) int {
	for {
		p, ok := in.parent[label]
		if !ok {
			return label
		}
		label = p
	}
}

// framePriority is the reservoir priority of a frame: the splitmix64
// finalizer over (seed, frame). Stateless and order-free, so bottom-k
// membership depends only on which frames a stratum has seen — never
// on arrival interleaving, chunk boundaries, or merge history — and a
// checkpointed ingestor carries no RNG state at all.
func framePriority(seed uint64, frame int) uint64 {
	x := seed + 0x9E3779B97F4A7C15*uint64(frame+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
