// Package power is the per-event energy model of the simulated GPU — the
// role McPAT plays inside TEAPOT. It attributes the activity counted by
// the timing simulator to the three pipeline phases the paper weights
// frames by (Geometry Pipeline, Tiling Engine, Raster Pipeline) and
// produces the per-phase power fractions of Fig. 4, which in turn give
// MEGsim its characterization weights (Section III-C).
//
// Event energies are in arbitrary charge units; only ratios matter for
// the methodology. Memory-system energy (L2 and DRAM) is attributed to
// the phase that originated each access, with DRAM energy apportioned by
// each phase's share of L2 traffic.
package power

import "repro/internal/tbr"

// EnergyModel holds per-event energies.
type EnergyModel struct {
	// Geometry pipeline events.
	VertexFetch  float64 // per vertex-cache access
	VSInstr      float64 // per vertex shader instruction
	PrimAssembly float64 // per assembled primitive
	ClipCull     float64 // per clipped/culled primitive

	// Tiling engine events.
	PLBWrite     float64 // per polygon-list (prim, tile) record write
	TileListRead float64 // per tile-cache access

	// Raster pipeline events.
	RasterQuad float64 // per rasterized quad
	EarlyZTest float64 // per early-Z-tested quad
	FSInstr    float64 // per fragment shader instruction (per lane)
	TexAccess  float64 // per filter-weighted texture access
	Blend      float64 // per blended quad
	FBWrite    float64 // per framebuffer line written

	// Shared memory system.
	L2Access   float64 // per L2 access
	DRAMAccess float64 // per DRAM line transfer
}

// DefaultEnergyModel returns energies calibrated so that an average 3D
// gameplay workload on the simulator lands near the per-phase split the
// paper measures with McPAT (Fig. 4: Geometry ~10.8%, Tiling ~14.7%,
// Raster ~74.5%). Per-event magnitudes stay physically ordered: DRAM
// transfers are an order of magnitude costlier than SRAM accesses;
// vertex shading carries attribute fetch and interpolant setup beyond
// raw ALU work; a polygon-list entry write is a multi-word SRAM + state
// merge operation.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		VertexFetch:  20,
		VSInstr:      26,
		PrimAssembly: 12,
		ClipCull:     6,

		PLBWrite:     220,
		TileListRead: 120,

		RasterQuad: 6,
		EarlyZTest: 4,
		FSInstr:    8,
		TexAccess:  10,
		Blend:      8,
		FBWrite:    12,

		L2Access:   20,
		DRAMAccess: 130,
	}
}

// Breakdown is per-phase energy for some simulated interval.
type Breakdown struct {
	Geometry float64
	Tiling   float64
	Raster   float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Geometry + b.Tiling + b.Raster }

// Fractions returns the per-phase shares (summing to 1 for non-zero
// totals). This is what Fig. 4 plots and what Section III-C uses as the
// characterization weights.
func (b Breakdown) Fractions() (geometry, tiling, raster float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return b.Geometry / t, b.Tiling / t, b.Raster / t
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Geometry += o.Geometry
	b.Tiling += o.Tiling
	b.Raster += o.Raster
}

// FrameEnergy attributes one frame's measured activity to the three
// pipeline phases.
func (m EnergyModel) FrameEnergy(st *tbr.FrameStats) Breakdown {
	var b Breakdown

	b.Geometry = m.VertexFetch*float64(st.VertexCache.Accesses) +
		m.VSInstr*float64(st.VSInstrs) +
		m.PrimAssembly*float64(st.PrimsIn) +
		m.ClipCull*float64(st.PrimsIn)

	b.Tiling = m.PLBWrite*float64(st.TileEntries) +
		m.TileListRead*float64(st.TileCache.Accesses)

	b.Raster = m.RasterQuad*float64(st.QuadsRasterized) +
		m.EarlyZTest*float64(st.QuadsRasterized) +
		m.FSInstr*float64(st.FSInstrs) +
		m.TexAccess*float64(st.TexAccesses) +
		m.Blend*float64(st.BlendOps) +
		m.FBWrite*float64(st.FramebufferLines)

	// Attribute L2 accesses to their originating phase.
	geomL2 := float64(st.VertexCache.Misses + st.VertexCache.Writebacks)
	tileL2 := float64(st.TileEntries) + // PLB records write through L2
		float64(st.TileCache.Misses+st.TileCache.Writebacks)
	rastL2 := float64(st.TextureCache.Misses+st.TextureCache.Writebacks) +
		float64(st.FramebufferLines)
	totalL2 := geomL2 + tileL2 + rastL2
	b.Geometry += m.L2Access * geomL2
	b.Tiling += m.L2Access * tileL2
	b.Raster += m.L2Access * rastL2

	// DRAM energy splits by each phase's share of L2 traffic (the L2
	// filters all phases identically in this model).
	if totalL2 > 0 {
		dram := m.DRAMAccess * float64(st.DRAM.Accesses)
		b.Geometry += dram * geomL2 / totalL2
		b.Tiling += dram * tileL2 / totalL2
		b.Raster += dram * rastL2 / totalL2
	}
	return b
}

// SequenceEnergy sums FrameEnergy over per-frame stats.
func (m EnergyModel) SequenceEnergy(frames []tbr.FrameStats) Breakdown {
	var b Breakdown
	for i := range frames {
		b.Add(m.FrameEnergy(&frames[i]))
	}
	return b
}

// AveragePowerWatts converts a breakdown over a cycle count to average
// power, given the energy unit in picojoules and clock in MHz. Used for
// reporting only.
func AveragePowerWatts(b Breakdown, cycles uint64, picojoulesPerUnit float64, freqMHz int) float64 {
	if cycles == 0 {
		return 0
	}
	joules := b.Total() * picojoulesPerUnit * 1e-12
	seconds := float64(cycles) / (float64(freqMHz) * 1e6)
	return joules / seconds
}
