package power

import (
	"math"
	"testing"

	"repro/internal/tbr"
	"repro/internal/tbr/mem"
)

// unitModel has distinct per-event energies so every attribution in
// FrameEnergy is hand-computable and a misrouted event shows up as a
// wrong phase, not just a wrong total.
func unitModel() EnergyModel {
	return EnergyModel{
		VertexFetch:  1,
		VSInstr:      2,
		PrimAssembly: 3,
		ClipCull:     4,

		PLBWrite:     5,
		TileListRead: 6,

		RasterQuad: 7,
		EarlyZTest: 8,
		FSInstr:    9,
		TexAccess:  10,
		Blend:      11,
		FBWrite:    12,

		L2Access:   13,
		DRAMAccess: 14,
	}
}

// TestFrameEnergyPerStageAttribution drives every event class of the
// energy model through FrameEnergy one at a time and checks the exact
// energy lands in the exact phase the model documents.
func TestFrameEnergyPerStageAttribution(t *testing.T) {
	m := unitModel()
	cases := []struct {
		name string
		st   tbr.FrameStats
		want Breakdown
	}{
		{
			name: "zero activity",
			st:   tbr.FrameStats{},
			want: Breakdown{},
		},
		{
			name: "vertex cache accesses are geometry",
			st:   tbr.FrameStats{VertexCache: mem.CacheStats{Accesses: 3}},
			want: Breakdown{Geometry: 3 * 1},
		},
		{
			name: "vertex shader instructions are geometry",
			st:   tbr.FrameStats{VSInstrs: 5},
			want: Breakdown{Geometry: 5 * 2},
		},
		{
			name: "primitives pay assembly and clip/cull",
			st:   tbr.FrameStats{PrimsIn: 2},
			want: Breakdown{Geometry: 2*3 + 2*4},
		},
		{
			// A PLB record write also writes through the L2, so one
			// tile entry carries PLBWrite + L2Access.
			name: "tile entries are tiling (incl. L2 write-through)",
			st:   tbr.FrameStats{TileEntries: 4},
			want: Breakdown{Tiling: 4*5 + 4*13},
		},
		{
			name: "tile cache accesses are tiling",
			st:   tbr.FrameStats{TileCache: mem.CacheStats{Accesses: 3}},
			want: Breakdown{Tiling: 3 * 6},
		},
		{
			name: "rasterized quads pay raster and early-Z",
			st:   tbr.FrameStats{QuadsRasterized: 2},
			want: Breakdown{Raster: 2*7 + 2*8},
		},
		{
			name: "fragment shader instructions are raster",
			st:   tbr.FrameStats{FSInstrs: 3},
			want: Breakdown{Raster: 3 * 9},
		},
		{
			name: "texture accesses are raster",
			st:   tbr.FrameStats{TexAccesses: 2},
			want: Breakdown{Raster: 2 * 10},
		},
		{
			name: "blend ops are raster",
			st:   tbr.FrameStats{BlendOps: 2},
			want: Breakdown{Raster: 2 * 11},
		},
		{
			// A framebuffer line is written through the L2 as well.
			name: "framebuffer lines are raster (incl. L2 traffic)",
			st:   tbr.FrameStats{FramebufferLines: 2},
			want: Breakdown{Raster: 2*12 + 2*13},
		},
		{
			name: "vertex cache misses+writebacks are geometry L2 traffic",
			st:   tbr.FrameStats{VertexCache: mem.CacheStats{Misses: 1, Writebacks: 1}},
			want: Breakdown{Geometry: 2 * 13},
		},
		{
			name: "tile cache misses+writebacks are tiling L2 traffic",
			st:   tbr.FrameStats{TileCache: mem.CacheStats{Misses: 1, Writebacks: 1}},
			want: Breakdown{Tiling: 2 * 13},
		},
		{
			name: "texture cache misses+writebacks are raster L2 traffic",
			st:   tbr.FrameStats{TextureCache: mem.CacheStats{Misses: 2}},
			want: Breakdown{Raster: 2 * 13},
		},
		{
			// DRAM energy splits by each phase's share of L2 traffic:
			// geometry contributed 1 of 4 L2 accesses, raster 3 of 4.
			name: "DRAM energy splits by L2 traffic share",
			st: tbr.FrameStats{
				VertexCache:  mem.CacheStats{Misses: 1},
				TextureCache: mem.CacheStats{Misses: 3},
				DRAM:         mem.DRAMStats{Accesses: 4},
			},
			want: Breakdown{
				Geometry: 1*13 + 14*4*1.0/4,
				Raster:   3*13 + 14*4*3.0/4,
			},
		},
		{
			// With no L2 traffic there is nothing to apportion DRAM
			// energy to; the model must not divide by zero.
			name: "DRAM accesses without L2 traffic attribute nothing",
			st:   tbr.FrameStats{DRAM: mem.DRAMStats{Accesses: 100}},
			want: Breakdown{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := m.FrameEnergy(&tc.st)
			const eps = 1e-9
			if math.Abs(got.Geometry-tc.want.Geometry) > eps ||
				math.Abs(got.Tiling-tc.want.Tiling) > eps ||
				math.Abs(got.Raster-tc.want.Raster) > eps {
				t.Errorf("FrameEnergy = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestFrameEnergyZeroActivityIsZero(t *testing.T) {
	for _, m := range []EnergyModel{unitModel(), DefaultEnergyModel()} {
		b := m.FrameEnergy(&tbr.FrameStats{})
		if b.Geometry != 0 || b.Tiling != 0 || b.Raster != 0 {
			t.Fatalf("zero-activity frame has energy %+v", b)
		}
		if g, ti, r := b.Fractions(); g != 0 || ti != 0 || r != 0 {
			t.Fatalf("zero-activity fractions %v/%v/%v", g, ti, r)
		}
	}
}

// TestFrameEnergyOverflowAdjacentCountersStayFinite saturates every
// counter: the float64 conversion must keep all phases finite and
// positive (no uint64 wraparound, no NaN from the DRAM apportioning).
func TestFrameEnergyOverflowAdjacentCountersStayFinite(t *testing.T) {
	const max = math.MaxUint64
	st := tbr.FrameStats{
		Cycles:           max,
		VSInstrs:         max,
		PrimsIn:          max,
		TileEntries:      max,
		QuadsRasterized:  max,
		FSInstrs:         max,
		TexAccesses:      max,
		BlendOps:         max,
		FramebufferLines: max,
		VertexCache:      mem.CacheStats{Accesses: max, Misses: max, Writebacks: max},
		TextureCache:     mem.CacheStats{Accesses: max, Misses: max, Writebacks: max},
		TileCache:        mem.CacheStats{Accesses: max, Misses: max, Writebacks: max},
		L2:               mem.CacheStats{Accesses: max, Misses: max, Writebacks: max},
		DRAM:             mem.DRAMStats{Accesses: max},
	}
	for _, m := range []EnergyModel{unitModel(), DefaultEnergyModel()} {
		b := m.FrameEnergy(&st)
		for phase, v := range map[string]float64{
			"geometry": b.Geometry, "tiling": b.Tiling, "raster": b.Raster, "total": b.Total(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("%s energy = %v on saturated counters", phase, v)
			}
		}
		g, ti, r := b.Fractions()
		if math.Abs(g+ti+r-1) > 1e-9 {
			t.Fatalf("saturated-counter fractions sum to %v", g+ti+r)
		}
	}
}

// TestSequenceEnergyEmpty pins the zero-length base case.
func TestSequenceEnergyEmpty(t *testing.T) {
	if got := DefaultEnergyModel().SequenceEnergy(nil).Total(); got != 0 {
		t.Fatalf("SequenceEnergy(nil) = %v", got)
	}
}
