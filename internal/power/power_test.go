package power

import (
	"math"
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

func TestBreakdownFractionsSumToOne(t *testing.T) {
	b := Breakdown{Geometry: 10, Tiling: 15, Raster: 75}
	g, ti, r := b.Fractions()
	if math.Abs(g+ti+r-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", g+ti+r)
	}
	if g != 0.1 || ti != 0.15 || r != 0.75 {
		t.Fatalf("fractions %v/%v/%v", g, ti, r)
	}
}

func TestZeroBreakdown(t *testing.T) {
	g, ti, r := (Breakdown{}).Fractions()
	if g != 0 || ti != 0 || r != 0 {
		t.Fatal("zero breakdown should have zero fractions")
	}
}

func TestAdd(t *testing.T) {
	a := Breakdown{Geometry: 1, Tiling: 2, Raster: 3}
	a.Add(Breakdown{Geometry: 10, Tiling: 20, Raster: 30})
	if a.Geometry != 11 || a.Tiling != 22 || a.Raster != 33 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestFrameEnergyPositiveAndRasterDominant(t *testing.T) {
	// On a real gameplay frame the raster phase must dominate energy —
	// the observation Fig. 4 rests on (74.5% average in the paper).
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultEnergyModel()
	var total Breakdown
	for f := tr.NumFrames() / 2; f < tr.NumFrames()/2+10; f++ {
		st := sim.SimulateFrame(f)
		b := m.FrameEnergy(&st)
		if b.Geometry <= 0 || b.Tiling <= 0 || b.Raster <= 0 {
			t.Fatalf("frame %d: non-positive phase energy %+v", f, b)
		}
		total.Add(b)
	}
	g, ti, r := total.Fractions()
	if r < 0.5 {
		t.Fatalf("raster fraction %.3f not dominant (geom %.3f, tiling %.3f)", r, g, ti)
	}
	if g <= 0 || ti <= 0 {
		t.Fatalf("degenerate fractions: %.3f/%.3f/%.3f", g, ti, r)
	}
}

func TestSequenceEnergyEqualsSumOfFrames(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	frames := []tbr.FrameStats{sim.SimulateFrame(0), sim.SimulateFrame(1), sim.SimulateFrame(2)}
	m := DefaultEnergyModel()
	seq := m.SequenceEnergy(frames)
	var manual Breakdown
	for i := range frames {
		manual.Add(m.FrameEnergy(&frames[i]))
	}
	if math.Abs(seq.Total()-manual.Total()) > 1e-9 {
		t.Fatalf("sequence %v != sum %v", seq.Total(), manual.Total())
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	m := DefaultEnergyModel()
	small := tbr.FrameStats{QuadsRasterized: 100, FSInstrs: 1000}
	big := tbr.FrameStats{QuadsRasterized: 1000, FSInstrs: 10000}
	if m.FrameEnergy(&big).Raster <= m.FrameEnergy(&small).Raster {
		t.Fatal("energy must grow with activity")
	}
}

func TestAveragePowerWatts(t *testing.T) {
	b := Breakdown{Raster: 1e6}
	// 1e6 units x 100 pJ = 1e8 pJ = 1e-4 J over 600k cycles at 600 MHz
	// (1 ms) = 0.1 W.
	w := AveragePowerWatts(b, 600_000, 100, 600)
	if math.Abs(w-0.1) > 1e-9 {
		t.Fatalf("power = %v W, want 0.1", w)
	}
	if AveragePowerWatts(b, 0, 100, 600) != 0 {
		t.Fatal("zero cycles should give zero power")
	}
}
