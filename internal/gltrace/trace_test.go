package gltrace_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	. "repro/internal/gltrace"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/xmath/stats"
)

// buildTestTrace returns a small, valid two-frame trace.
func buildTestTrace(t testing.TB) *Trace {
	t.Helper()
	g := shader.NewGenerator(stats.NewRNG(5))
	vs := g.Vertex(shader.SimpleVertex)
	fs := g.Fragment(shader.SimpleFragment)
	tr := &Trace{
		Name:            "test",
		Viewport:        geom.Viewport{Width: 128, Height: 64},
		VertexShaders:   []*shader.Program{vs},
		FragmentShaders: []*shader.Program{fs},
		Meshes:          []Mesh{scene.Quad("q"), scene.Box("b")},
		Textures:        []Texture{{Name: "t0", Width: 64, Height: 64, BytesPerTexel: 4}},
	}
	for f := 0; f < 2; f++ {
		tr.Frames = append(tr.Frames, Frame{Commands: []Command{
			{Op: CmdClear},
			{Op: CmdBindProgram, VS: 0, FS: 0},
			{Op: CmdBindTexture, Unit: 0, Texture: 0},
			{Op: CmdDraw, Mesh: 0, MVP: geom.IdentityMat4()},
			{Op: CmdDraw, Mesh: 1, MVP: geom.IdentityMat4()},
		}})
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	return tr
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	buildTestTrace(t)
}

func TestValidateRejectsBadTraces(t *testing.T) {
	mutations := map[string]func(*Trace){
		"empty name":       func(tr *Trace) { tr.Name = "" },
		"zero viewport":    func(tr *Trace) { tr.Viewport.Width = 0 },
		"bad mesh index":   func(tr *Trace) { tr.Frames[0].Commands[3].Mesh = 99 },
		"bad vs index":     func(tr *Trace) { tr.Frames[0].Commands[1].VS = 5 },
		"bad fs index":     func(tr *Trace) { tr.Frames[0].Commands[1].FS = -1 },
		"bad texture":      func(tr *Trace) { tr.Frames[0].Commands[2].Texture = 7 },
		"bad sampler unit": func(tr *Trace) { tr.Frames[0].Commands[2].Unit = 8 },
		"draw before bind": func(tr *Trace) {
			tr.Frames[0].Commands = []Command{{Op: CmdDraw, Mesh: 0}}
		},
		"ragged indices": func(tr *Trace) { tr.Meshes[0].Indices = tr.Meshes[0].Indices[:4] },
		"oob mesh index": func(tr *Trace) { tr.Meshes[0].Indices[0] = 99 },
		"vs wrong kind": func(tr *Trace) {
			tr.VertexShaders[0] = tr.FragmentShaders[0]
		},
	}
	for name, mutate := range mutations {
		tr := buildTestTrace(t)
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted trace", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumFrames() != tr.NumFrames() {
		t.Fatalf("round trip lost data: %s/%d", got.Name, got.NumFrames())
	}
	if len(got.VertexShaders) != 1 || got.VertexShaders[0].StaticCost() != tr.VertexShaders[0].StaticCost() {
		t.Fatal("shader programs not preserved")
	}
	if got.TotalPrimitives() != tr.TotalPrimitives() {
		t.Fatal("primitive counts not preserved")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := buildTestTrace(t)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test" {
		t.Fatalf("loaded name = %q", got.Name)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestTotalPrimitives(t *testing.T) {
	tr := buildTestTrace(t)
	// 2 frames x (quad 2 + box 12) = 28 triangles.
	if got := tr.TotalPrimitives(); got != 28 {
		t.Fatalf("TotalPrimitives = %d, want 28", got)
	}
}

func TestFrameDrawCount(t *testing.T) {
	tr := buildTestTrace(t)
	if got := tr.Frames[0].DrawCount(); got != 2 {
		t.Fatalf("DrawCount = %d, want 2", got)
	}
}

func TestTextureSizeBytes(t *testing.T) {
	tx := Texture{Width: 64, Height: 32, BytesPerTexel: 4}
	if got := tx.SizeBytes(); got != 64*32*4 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestCmdOpString(t *testing.T) {
	if CmdDraw.String() != "draw" || CmdClear.String() != "clear" {
		t.Fatal("CmdOp.String wrong")
	}
}
