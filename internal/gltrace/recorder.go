package gltrace

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/shader"
)

// Recorder is an immediate-mode command API that captures a Trace — the
// role of TEAPOT's OpenGL interceptor, for users who want to author
// workloads programmatically instead of through the workload.Profile
// DSL. Resources are registered up front; per-frame calls mirror a GL
// driver: bind state, draw, end the frame.
//
// The zero value is not usable; construct with NewRecorder. Recorder
// methods panic on invalid resource handles (programming errors), while
// Finish validates the assembled trace and reports stream-level
// problems as errors.
type Recorder struct {
	trace    Trace
	frame    Frame
	inFrame  bool
	bound    bool
	finished bool
}

// NewRecorder starts a capture for a render target of the given size.
func NewRecorder(name string, width, height int) *Recorder {
	return &Recorder{
		trace: Trace{
			Name:     name,
			Viewport: geom.Viewport{Width: width, Height: height},
		},
	}
}

// MeshHandle references a registered mesh.
type MeshHandle int

// TextureHandle references a registered texture.
type TextureHandle int

// ProgramHandle references a registered vertex+fragment shader pair.
type ProgramHandle int

// AddMesh registers a mesh and returns its handle.
func (r *Recorder) AddMesh(m Mesh) MeshHandle {
	r.trace.Meshes = append(r.trace.Meshes, m)
	return MeshHandle(len(r.trace.Meshes) - 1)
}

// AddTexture registers a texture and returns its handle.
func (r *Recorder) AddTexture(t Texture) TextureHandle {
	r.trace.Textures = append(r.trace.Textures, t)
	return TextureHandle(len(r.trace.Textures) - 1)
}

// AddProgram registers a vertex+fragment shader pair as one program.
// Both programs must validate and have the matching kinds.
func (r *Recorder) AddProgram(vs, fs *shader.Program) (ProgramHandle, error) {
	if vs == nil || fs == nil {
		return 0, fmt.Errorf("gltrace: AddProgram needs both shaders")
	}
	if vs.Kind != shader.VertexKind || fs.Kind != shader.FragmentKind {
		return 0, fmt.Errorf("gltrace: AddProgram kinds are %v/%v, want vertex/fragment", vs.Kind, fs.Kind)
	}
	if err := vs.Validate(); err != nil {
		return 0, err
	}
	if err := fs.Validate(); err != nil {
		return 0, err
	}
	r.trace.VertexShaders = append(r.trace.VertexShaders, vs)
	r.trace.FragmentShaders = append(r.trace.FragmentShaders, fs)
	return ProgramHandle(len(r.trace.VertexShaders) - 1), nil
}

// BeginFrame opens a new frame and clears the render target.
func (r *Recorder) BeginFrame() {
	if r.finished {
		panic("gltrace: Recorder used after Finish")
	}
	if r.inFrame {
		panic("gltrace: BeginFrame inside an open frame")
	}
	r.inFrame = true
	r.bound = false
	r.frame = Frame{Commands: []Command{{Op: CmdClear}}}
}

// UseProgram binds a program for subsequent draws.
func (r *Recorder) UseProgram(p ProgramHandle) {
	r.mustBeInFrame("UseProgram")
	if int(p) < 0 || int(p) >= len(r.trace.VertexShaders) {
		panic(fmt.Sprintf("gltrace: UseProgram(%d) with %d programs registered", p, len(r.trace.VertexShaders)))
	}
	r.frame.Commands = append(r.frame.Commands, Command{Op: CmdBindProgram, VS: int(p), FS: int(p)})
	r.bound = true
}

// BindTexture binds a texture to a sampler unit.
func (r *Recorder) BindTexture(unit int, t TextureHandle) {
	r.mustBeInFrame("BindTexture")
	if int(t) < 0 || int(t) >= len(r.trace.Textures) {
		panic(fmt.Sprintf("gltrace: BindTexture(%d) with %d textures registered", t, len(r.trace.Textures)))
	}
	r.frame.Commands = append(r.frame.Commands, Command{Op: CmdBindTexture, Unit: unit, Texture: int(t)})
}

// Draw submits a mesh instance under the current state.
func (r *Recorder) Draw(m MeshHandle, mvp geom.Mat4) {
	r.DrawDepthBiased(m, mvp, 0, false)
}

// DrawBlended submits an alpha-blended mesh instance.
func (r *Recorder) DrawBlended(m MeshHandle, mvp geom.Mat4) {
	r.DrawDepthBiased(m, mvp, 0, true)
}

// DrawDepthBiased submits a draw with an explicit depth bias and blend
// flag.
func (r *Recorder) DrawDepthBiased(m MeshHandle, mvp geom.Mat4, bias float64, blend bool) {
	r.mustBeInFrame("Draw")
	if !r.bound {
		panic("gltrace: Draw with no program bound")
	}
	if int(m) < 0 || int(m) >= len(r.trace.Meshes) {
		panic(fmt.Sprintf("gltrace: Draw(%d) with %d meshes registered", m, len(r.trace.Meshes)))
	}
	r.frame.Commands = append(r.frame.Commands, Command{
		Op: CmdDraw, Mesh: int(m), MVP: mvp, DepthBias: bias, Blend: blend,
	})
}

// EndFrame closes the current frame (the SwapBuffers moment).
func (r *Recorder) EndFrame() {
	r.mustBeInFrame("EndFrame")
	r.trace.Frames = append(r.trace.Frames, r.frame)
	r.inFrame = false
}

// NumFrames returns the number of completed frames so far.
func (r *Recorder) NumFrames() int { return len(r.trace.Frames) }

// Finish validates and returns the captured trace. The recorder cannot
// be used afterwards.
func (r *Recorder) Finish() (*Trace, error) {
	if r.inFrame {
		return nil, fmt.Errorf("gltrace: Finish inside an open frame")
	}
	if r.finished {
		return nil, fmt.Errorf("gltrace: Finish called twice")
	}
	r.finished = true
	if err := r.trace.Validate(); err != nil {
		return nil, err
	}
	return &r.trace, nil
}

func (r *Recorder) mustBeInFrame(op string) {
	if r.finished {
		panic("gltrace: Recorder used after Finish")
	}
	if !r.inFrame {
		panic("gltrace: " + op + " outside BeginFrame/EndFrame")
	}
}
