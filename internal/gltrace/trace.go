// Package gltrace defines the OpenGL-like command trace that feeds the
// simulators, playing the role of the "OpenGL commands trace" TEAPOT
// captures from the Android emulator. A Trace is fully self-contained:
// it embeds the shader programs, meshes and texture descriptors it
// references, plus a per-frame command stream, so it can be serialized
// to disk and replayed by the functional and timing simulators.
package gltrace

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
	"repro/internal/shader"
)

// Vertex is one mesh vertex: object-space position plus texture
// coordinates.
type Vertex struct {
	Pos geom.Vec3
	U   float64
	V   float64
}

// Mesh is an indexed triangle mesh. Indices reference Vertices in groups
// of three.
type Mesh struct {
	Name     string
	Vertices []Vertex
	Indices  []int
}

// TriangleCount returns the number of primitives in the mesh.
func (m *Mesh) TriangleCount() int { return len(m.Indices) / 3 }

// BytesPerVertex is the memory footprint of one vertex as fetched by the
// Vertex Fetcher (position + UV as 32-bit floats plus padding, matching
// the 136-byte vertex queue entries of Table I at a smaller attribute
// count).
const BytesPerVertex = 32

// Texture describes a texture resource; only its footprint matters to the
// memory system, texel values are generated procedurally from the ID.
type Texture struct {
	Name          string
	Width, Height int
	// BytesPerTexel is 4 for RGBA8888 content.
	BytesPerTexel int
}

// SizeBytes returns the total texture footprint.
func (t *Texture) SizeBytes() int { return t.Width * t.Height * t.BytesPerTexel }

// CmdOp enumerates trace commands.
type CmdOp int

const (
	// CmdClear clears the color and depth buffers.
	CmdClear CmdOp = iota
	// CmdBindProgram selects the current vertex + fragment shader pair.
	CmdBindProgram
	// CmdBindTexture binds a texture resource to a sampler unit.
	CmdBindTexture
	// CmdDraw renders a mesh instance with a model-view-projection
	// transform under the currently bound state.
	CmdDraw
)

// String names the command.
func (c CmdOp) String() string {
	switch c {
	case CmdClear:
		return "clear"
	case CmdBindProgram:
		return "bind_program"
	case CmdBindTexture:
		return "bind_texture"
	case CmdDraw:
		return "draw"
	default:
		return fmt.Sprintf("CmdOp(%d)", int(c))
	}
}

// Command is one entry of a frame's command stream. Fields are used
// according to Op.
type Command struct {
	Op CmdOp

	// CmdBindProgram: indices into Trace.VertexShaders and
	// Trace.FragmentShaders.
	VS, FS int

	// CmdBindTexture: sampler unit and index into Trace.Textures.
	Unit, Texture int

	// CmdDraw: index into Trace.Meshes and the instance transform.
	Mesh int
	MVP  geom.Mat4
	// Depth bias shifts the instance's depth range so layered 2D games
	// draw back-to-front deterministically.
	DepthBias float64
	// Blend marks the draw as alpha-blended: its fragments are depth-
	// tested against opaque geometry but never write depth, and the
	// Blending Unit combines them with the framebuffer (Section II-A's
	// transparent, non-occluded fragments).
	Blend bool
}

// Frame is the command stream of one rendered frame.
type Frame struct {
	Commands []Command
}

// DrawCount returns the number of draw commands in the frame.
func (f *Frame) DrawCount() int {
	n := 0
	for i := range f.Commands {
		if f.Commands[i].Op == CmdDraw {
			n++
		}
	}
	return n
}

// Trace is a complete captured workload: resources plus per-frame
// command streams.
type Trace struct {
	// Name identifies the workload (e.g. "bbr1").
	Name string
	// Viewport is the render target size in pixels.
	Viewport geom.Viewport
	// VertexShaders and FragmentShaders are the shader programs the
	// workload uses; CmdBindProgram indexes into these.
	VertexShaders   []*shader.Program
	FragmentShaders []*shader.Program
	// Meshes and Textures are the geometry/texture resources.
	Meshes   []Mesh
	Textures []Texture
	// Frames is the captured sequence.
	Frames []Frame
}

// NumFrames returns the number of frames in the trace.
func (t *Trace) NumFrames() int { return len(t.Frames) }

// Validate checks referential integrity of the whole trace: every
// resource index used by a command must exist, every shader program must
// itself validate, and draws must appear only with a program bound
// earlier in the same frame (TBR drivers re-emit state per frame).
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("gltrace: trace has empty name")
	}
	if t.Viewport.Width <= 0 || t.Viewport.Height <= 0 {
		return fmt.Errorf("gltrace %s: invalid viewport %dx%d", t.Name, t.Viewport.Width, t.Viewport.Height)
	}
	for i, p := range t.VertexShaders {
		if p.Kind != shader.VertexKind {
			return fmt.Errorf("gltrace %s: VertexShaders[%d] has kind %v", t.Name, i, p.Kind)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("gltrace %s: %w", t.Name, err)
		}
	}
	for i, p := range t.FragmentShaders {
		if p.Kind != shader.FragmentKind {
			return fmt.Errorf("gltrace %s: FragmentShaders[%d] has kind %v", t.Name, i, p.Kind)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("gltrace %s: %w", t.Name, err)
		}
	}
	for i := range t.Meshes {
		m := &t.Meshes[i]
		if len(m.Indices)%3 != 0 {
			return fmt.Errorf("gltrace %s: mesh %d index count %d not a multiple of 3", t.Name, i, len(m.Indices))
		}
		for _, idx := range m.Indices {
			if idx < 0 || idx >= len(m.Vertices) {
				return fmt.Errorf("gltrace %s: mesh %d references vertex %d of %d", t.Name, i, idx, len(m.Vertices))
			}
		}
	}
	for fi := range t.Frames {
		bound := false
		for ci, cmd := range t.Frames[fi].Commands {
			switch cmd.Op {
			case CmdBindProgram:
				if cmd.VS < 0 || cmd.VS >= len(t.VertexShaders) {
					return fmt.Errorf("gltrace %s: frame %d cmd %d binds missing vertex shader %d", t.Name, fi, ci, cmd.VS)
				}
				if cmd.FS < 0 || cmd.FS >= len(t.FragmentShaders) {
					return fmt.Errorf("gltrace %s: frame %d cmd %d binds missing fragment shader %d", t.Name, fi, ci, cmd.FS)
				}
				bound = true
			case CmdBindTexture:
				if cmd.Texture < 0 || cmd.Texture >= len(t.Textures) {
					return fmt.Errorf("gltrace %s: frame %d cmd %d binds missing texture %d", t.Name, fi, ci, cmd.Texture)
				}
				if cmd.Unit < 0 || cmd.Unit >= 8 {
					return fmt.Errorf("gltrace %s: frame %d cmd %d binds sampler unit %d out of range", t.Name, fi, ci, cmd.Unit)
				}
			case CmdDraw:
				if cmd.Mesh < 0 || cmd.Mesh >= len(t.Meshes) {
					return fmt.Errorf("gltrace %s: frame %d cmd %d draws missing mesh %d", t.Name, fi, ci, cmd.Mesh)
				}
				if !bound {
					return fmt.Errorf("gltrace %s: frame %d cmd %d draws with no program bound", t.Name, fi, ci)
				}
			case CmdClear:
				// always valid
			default:
				return fmt.Errorf("gltrace %s: frame %d cmd %d has unknown op %d", t.Name, fi, ci, int(cmd.Op))
			}
		}
	}
	return nil
}

// TotalPrimitives returns the total triangle count submitted across all
// frames (before clipping/culling).
func (t *Trace) TotalPrimitives() int {
	total := 0
	for fi := range t.Frames {
		for _, cmd := range t.Frames[fi].Commands {
			if cmd.Op == CmdDraw {
				total += t.Meshes[cmd.Mesh].TriangleCount()
			}
		}
	}
	return total
}

// Save writes the trace to w as gzip-compressed gob.
func (t *Trace) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(t); err != nil {
		zw.Close()
		return fmt.Errorf("gltrace: encoding %s: %w", t.Name, err)
	}
	return zw.Close()
}

// Load reads a trace previously written by Save and validates it.
func Load(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("gltrace: opening compressed trace: %w", err)
	}
	defer zr.Close()
	var t Trace
	if err := gob.NewDecoder(zr).Decode(&t); err != nil {
		return nil, fmt.Errorf("gltrace: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// SaveFile writes the trace to the named file.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gltrace: creating %s: %w", path, err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from the named file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gltrace: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
