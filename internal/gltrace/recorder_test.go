package gltrace_test

import (
	"testing"

	"repro/internal/geom"
	. "repro/internal/gltrace"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/xmath/stats"
)

func newTestRecorder(t *testing.T) (*Recorder, MeshHandle, TextureHandle, ProgramHandle) {
	t.Helper()
	r := NewRecorder("rec", 64, 64)
	mesh := r.AddMesh(scene.Quad("q"))
	tex := r.AddTexture(Texture{Name: "t", Width: 32, Height: 32, BytesPerTexel: 4})
	g := shader.NewGenerator(stats.NewRNG(9))
	prog, err := r.AddProgram(g.Vertex(shader.SimpleVertex), g.Fragment(shader.SimpleFragment))
	if err != nil {
		t.Fatal(err)
	}
	return r, mesh, tex, prog
}

func TestRecorderCapturesValidTrace(t *testing.T) {
	r, mesh, tex, prog := newTestRecorder(t)
	for f := 0; f < 3; f++ {
		r.BeginFrame()
		r.UseProgram(prog)
		r.BindTexture(0, tex)
		r.Draw(mesh, geom.IdentityMat4())
		r.DrawBlended(mesh, geom.Translate(geom.Vec3{X: 0.2}))
		r.EndFrame()
	}
	if r.NumFrames() != 3 {
		t.Fatalf("frames = %d", r.NumFrames())
	}
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFrames() != 3 || tr.Frames[0].DrawCount() != 2 {
		t.Fatalf("trace shape wrong: %d frames, %d draws", tr.NumFrames(), tr.Frames[0].DrawCount())
	}
	// The blended draw must carry the flag.
	blended := false
	for _, c := range tr.Frames[0].Commands {
		if c.Op == CmdDraw && c.Blend {
			blended = true
		}
	}
	if !blended {
		t.Fatal("DrawBlended lost the blend flag")
	}
}

func TestRecorderRejectsMismatchedPrograms(t *testing.T) {
	r := NewRecorder("rec", 32, 32)
	g := shader.NewGenerator(stats.NewRNG(3))
	vs := g.Vertex(shader.SimpleVertex)
	fs := g.Fragment(shader.SimpleFragment)
	if _, err := r.AddProgram(fs, vs); err == nil { // swapped kinds
		t.Fatal("accepted swapped shader kinds")
	}
	if _, err := r.AddProgram(nil, fs); err == nil {
		t.Fatal("accepted nil vertex shader")
	}
}

func TestRecorderPanicsOnMisuse(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	check("draw outside frame", func() {
		r, mesh, _, prog := newTestRecorder(t)
		_ = prog
		r.Draw(mesh, geom.IdentityMat4())
	})
	check("draw without program", func() {
		r, mesh, _, _ := newTestRecorder(t)
		r.BeginFrame()
		r.Draw(mesh, geom.IdentityMat4())
	})
	check("nested BeginFrame", func() {
		r, _, _, _ := newTestRecorder(t)
		r.BeginFrame()
		r.BeginFrame()
	})
	check("bad mesh handle", func() {
		r, _, _, prog := newTestRecorder(t)
		r.BeginFrame()
		r.UseProgram(prog)
		r.Draw(MeshHandle(99), geom.IdentityMat4())
	})
	check("use after finish", func() {
		r, _, _, _ := newTestRecorder(t)
		if _, err := r.Finish(); err != nil {
			t.Fatal(err)
		}
		r.BeginFrame()
	})
}

func TestRecorderFinishErrors(t *testing.T) {
	r, _, _, _ := newTestRecorder(t)
	r.BeginFrame()
	if _, err := r.Finish(); err == nil {
		t.Fatal("Finish inside open frame accepted")
	}
	r.EndFrame()
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestRecordedTraceSimulates(t *testing.T) {
	// A recorded trace must be directly consumable by the simulators
	// (validated via round trip through Save/Load as well).
	r, mesh, tex, prog := newTestRecorder(t)
	for f := 0; f < 2; f++ {
		r.BeginFrame()
		r.UseProgram(prog)
		r.BindTexture(0, tex)
		r.Draw(mesh, geom.IdentityMat4())
		r.EndFrame()
	}
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
