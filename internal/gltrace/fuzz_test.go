package gltrace_test

import (
	"bytes"
	"testing"

	"repro/internal/gltrace"
)

// FuzzLoad feeds arbitrary bytes to the trace loader: it must reject
// garbage with an error, never panic, and anything it accepts must
// validate.
func FuzzLoad(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{0x1f, 0x8b}) // gzip magic, truncated
	var valid bytes.Buffer
	tr := buildTestTrace(f)
	if err := tr.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := gltrace.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil trace with nil error")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Load returned invalid trace: %v", err)
		}
	})
}
