package gltrace_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/xmath/stats"
)

// addTraceSeed serializes a valid trace and adds it to the fuzz corpus.
func addTraceSeed(f *testing.F, tr *gltrace.Trace) {
	f.Helper()
	if err := tr.Validate(); err != nil {
		f.Fatalf("seed trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// seedShaders returns a minimal valid vertex/fragment shader pair.
func seedShaders() (*shader.Program, *shader.Program) {
	g := shader.NewGenerator(stats.NewRNG(11))
	return g.Vertex(shader.SimpleVertex), g.Fragment(shader.SimpleFragment)
}

// FuzzLoad feeds arbitrary bytes to the trace loader: it must reject
// garbage with an error, never panic, and anything it accepts must
// validate. The corpus seeds cover the structural edge cases mutation
// starts from: empty frames, degenerate geometry, and a max-size
// command stream.
func FuzzLoad(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{0x1f, 0x8b}) // gzip magic, truncated
	var valid bytes.Buffer
	tr := buildTestTrace(f)
	if err := tr.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	vs, fs := seedShaders()

	// Empty frames: command-less frames and a frame holding only a clear.
	addTraceSeed(f, &gltrace.Trace{
		Name:            "empty-frames",
		Viewport:        geom.Viewport{Width: 64, Height: 32},
		VertexShaders:   []*shader.Program{vs},
		FragmentShaders: []*shader.Program{fs},
		Frames: []gltrace.Frame{
			{Commands: nil},
			{},
			{Commands: []gltrace.Command{{Op: gltrace.CmdClear}}},
		},
	})

	// Degenerate triangles: three coincident vertices (zero area, zero
	// extent) and a collinear sliver, drawn with extreme depth bias.
	point := gltrace.Mesh{
		Name: "point",
		Vertices: []gltrace.Vertex{
			{Pos: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}},
			{Pos: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}},
			{Pos: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}},
		},
		Indices: []int{0, 1, 2},
	}
	sliver := gltrace.Mesh{
		Name: "sliver",
		Vertices: []gltrace.Vertex{
			{Pos: geom.Vec3{X: -1, Y: 0, Z: 0}, U: 0, V: 0},
			{Pos: geom.Vec3{X: 0, Y: 0, Z: 0}, U: 0.5, V: 0.5},
			{Pos: geom.Vec3{X: 1, Y: 0, Z: 0}, U: 1, V: 1},
		},
		Indices: []int{0, 1, 2, 2, 1, 0},
	}
	addTraceSeed(f, &gltrace.Trace{
		Name:            "degenerate",
		Viewport:        geom.Viewport{Width: 64, Height: 32},
		VertexShaders:   []*shader.Program{vs},
		FragmentShaders: []*shader.Program{fs},
		Meshes:          []gltrace.Mesh{point, sliver, {Name: "empty"}},
		Frames: []gltrace.Frame{{Commands: []gltrace.Command{
			{Op: gltrace.CmdBindProgram},
			{Op: gltrace.CmdDraw, Mesh: 0, MVP: geom.IdentityMat4()},
			{Op: gltrace.CmdDraw, Mesh: 1, MVP: geom.IdentityMat4(), DepthBias: math.MaxFloat64},
			{Op: gltrace.CmdDraw, Mesh: 2, MVP: geom.IdentityMat4(), DepthBias: -math.MaxFloat64},
		}}},
	})

	// Max-size command stream: one frame with hundreds of commands
	// re-binding state between draws.
	big := &gltrace.Trace{
		Name:            "maxcmds",
		Viewport:        geom.Viewport{Width: 64, Height: 32},
		VertexShaders:   []*shader.Program{vs},
		FragmentShaders: []*shader.Program{fs},
		Meshes:          []gltrace.Mesh{scene.Quad("q")},
		Textures:        []gltrace.Texture{{Name: "t", Width: 16, Height: 16, BytesPerTexel: 4}},
	}
	cmds := []gltrace.Command{{Op: gltrace.CmdClear}}
	for i := 0; i < 512; i++ {
		cmds = append(cmds,
			gltrace.Command{Op: gltrace.CmdBindProgram},
			gltrace.Command{Op: gltrace.CmdBindTexture, Unit: i % 8, Texture: 0},
			gltrace.Command{Op: gltrace.CmdDraw, Mesh: 0, MVP: geom.IdentityMat4(), DepthBias: float64(i) * 1e-6},
		)
	}
	big.Frames = []gltrace.Frame{{Commands: cmds}}
	addTraceSeed(f, big)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := gltrace.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil trace with nil error")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Load returned invalid trace: %v", err)
		}
	})
}
