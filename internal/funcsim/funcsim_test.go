package funcsim

import (
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

func run(t *testing.T, alias string) (*Result, int) {
	t.Helper()
	tr := workload.MustGenerate(workload.Profiles[alias], workload.TestScale)
	res, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tr); err != nil {
		t.Fatal(err)
	}
	return res, tr.NumFrames()
}

func TestRunProducesProfiles(t *testing.T) {
	res, frames := run(t, "hcr")
	if len(res.Profiles) != frames {
		t.Fatalf("profiles = %d, want %d", len(res.Profiles), frames)
	}
	for i := range res.Profiles {
		p := &res.Profiles[i]
		if p.PrimsVisible == 0 {
			t.Fatalf("frame %d has no visible primitives", i)
		}
		if p.Fragments == 0 {
			t.Fatalf("frame %d shaded no fragments", i)
		}
		if p.TotalInvocations() == 0 {
			t.Fatalf("frame %d has no shader invocations", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := run(t, "jjo")
	b, _ := run(t, "jjo")
	for i := range a.Profiles {
		pa, pb := &a.Profiles[i], &b.Profiles[i]
		if pa.Checksum != pb.Checksum || pa.Fragments != pb.Fragments {
			t.Fatalf("frame %d differs across runs", i)
		}
	}
}

func TestStaticCostsCollected(t *testing.T) {
	res, _ := run(t, "asp")
	if len(res.VSStatic) != 42 || len(res.FSStatic) != 45 {
		t.Fatalf("static cost vectors %d/%d, want 42/45", len(res.VSStatic), len(res.FSStatic))
	}
	for i, c := range res.VSStatic {
		if c.Instructions == 0 {
			t.Fatalf("VS %d has zero instructions", i)
		}
	}
	texWeighted := false
	for _, c := range res.FSStatic {
		if c.TexMemAccesses > c.TexSamples {
			texWeighted = true
		}
	}
	if !texWeighted {
		t.Fatal("no fragment shader has filter-weighted texture accesses")
	}
}

func TestAgreementWithTimingSimulator(t *testing.T) {
	// The functional and timing simulators share geometry and
	// rasterization; their visibility counts must agree exactly.
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	res, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tbr.DefaultConfig()
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{0, tr.NumFrames() / 2, tr.NumFrames() - 1} {
		ts := sim.SimulateFrame(f)
		fp := &res.Profiles[f]
		if ts.PrimsIn != fp.PrimsIn || ts.PrimsVisible != fp.PrimsVisible {
			t.Fatalf("frame %d: prims timing (%d,%d) vs functional (%d,%d)",
				f, ts.PrimsIn, ts.PrimsVisible, fp.PrimsIn, fp.PrimsVisible)
		}
		if ts.FragmentsShaded != fp.Fragments {
			t.Fatalf("frame %d: fragments timing %d vs functional %d",
				f, ts.FragmentsShaded, fp.Fragments)
		}
		var vsInv uint64
		for _, c := range fp.VSCount {
			vsInv += c
		}
		if ts.VerticesShaded != vsInv {
			t.Fatalf("frame %d: vertices timing %d vs functional %d", f, ts.VerticesShaded, vsInv)
		}
	}
}

func TestProfilesReflectPhaseStructure(t *testing.T) {
	// Menu frames and gameplay frames must produce measurably different
	// profiles (this is what clustering exploits).
	res, frames := run(t, "bbr1")
	menu := &res.Profiles[0]
	game := &res.Profiles[frames/2]
	if game.PrimsVisible < menu.PrimsVisible*2 {
		t.Fatalf("gameplay prims %d not >> menu prims %d", game.PrimsVisible, menu.PrimsVisible)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	res, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	res.Profiles[3].Frame = 99
	if err := res.Validate(tr); err == nil {
		t.Fatal("Validate accepted corrupted profile")
	}
	res.Profiles[3].Frame = 3
	res.Profiles[5].PrimsVisible = res.Profiles[5].PrimsIn + 1
	if err := res.Validate(tr); err == nil {
		t.Fatal("Validate accepted impossible visibility")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	tr.Name = ""
	if _, err := Run(tr); err == nil {
		t.Fatal("Run accepted invalid trace")
	}
}

func TestFSCountSumsEqualFragments(t *testing.T) {
	res, _ := run(t, "pvz")
	for i := range res.Profiles {
		p := &res.Profiles[i]
		var sum uint64
		for _, c := range p.FSCount {
			sum += c
		}
		if sum != p.Fragments {
			t.Fatalf("frame %d: FSCount sums to %d, Fragments = %d", i, sum, p.Fragments)
		}
	}
}

func TestBlendedContentShades(t *testing.T) {
	// 2D games mark most UI/particle layers as blended; their fragments
	// must still be counted (blended fragments shade unless occluded by
	// opaque geometry in front).
	res, _ := run(t, "jjo")
	mid := &res.Profiles[len(res.Profiles)/2]
	if mid.Fragments == 0 {
		t.Fatal("no fragments shaded in a blended-heavy 2D frame")
	}
}

func TestRenderFrameProducesImage(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	img, err := RenderFrame(tr, tr.NumFrames()/2)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != tr.Viewport.Width || img.Bounds().Dy() != tr.Viewport.Height {
		t.Fatalf("image size %v", img.Bounds())
	}
	// The frame must not be uniform: count distinct colors.
	colors := map[[3]uint8]bool{}
	for y := 0; y < img.Bounds().Dy(); y += 2 {
		for x := 0; x < img.Bounds().Dx(); x += 2 {
			c := img.RGBAAt(x, y)
			colors[[3]uint8{c.R, c.G, c.B}] = true
		}
	}
	if len(colors) < 5 {
		t.Fatalf("rendered frame nearly uniform: %d distinct colors", len(colors))
	}
}

func TestRenderFrameDeterministic(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["jjo"], workload.TestScale)
	a, err := RenderFrame(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderFrame(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestRenderFrameBounds(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	if _, err := RenderFrame(tr, -1); err == nil {
		t.Fatal("accepted negative frame")
	}
	if _, err := RenderFrame(tr, tr.NumFrames()); err == nil {
		t.Fatal("accepted out-of-range frame")
	}
}
