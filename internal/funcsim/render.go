package funcsim

import (
	"fmt"
	"image"
	"image/color"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/raster"
)

// RenderFrame rasterizes one frame of a trace to an RGBA image, using a
// deterministic per-material color scheme and depth-based shading. It is
// a debugging/visualization aid for the synthetic workloads: the output
// shows scene structure (layers, overdraw, animation), not real shading.
// Blended draws composite at half opacity, mirroring the simulators'
// transparency semantics.
func RenderFrame(trace *gltrace.Trace, frame int) (*image.RGBA, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	if frame < 0 || frame >= trace.NumFrames() {
		return nil, fmt.Errorf("funcsim: frame %d out of range [0,%d)", frame, trace.NumFrames())
	}
	vp := trace.Viewport
	img := image.NewRGBA(image.Rect(0, 0, vp.Width, vp.Height))
	// Background: dark gray so unlit pixels are distinguishable from
	// black geometry.
	for i := 0; i < len(img.Pix); i += 4 {
		img.Pix[i], img.Pix[i+1], img.Pix[i+2], img.Pix[i+3] = 24, 24, 32, 255
	}
	depth := raster.NewDepthBuffer(vp.Width, vp.Height)
	clip := geom.AABB2{Max: geom.Vec2{X: float64(vp.Width), Y: float64(vp.Height)}}

	curFS, curTex := 0, 0
	bound := false
	var triBuf []raster.ScreenTriangle
	for ci := range trace.Frames[frame].Commands {
		cmd := &trace.Frames[frame].Commands[ci]
		switch cmd.Op {
		case gltrace.CmdClear:
			depth.Clear()
		case gltrace.CmdBindProgram:
			curFS = cmd.FS
			bound = true
		case gltrace.CmdBindTexture:
			if cmd.Unit == 0 {
				curTex = cmd.Texture
			}
		case gltrace.CmdDraw:
			if !bound {
				continue
			}
			mesh := &trace.Meshes[cmd.Mesh]
			triBuf = triBuf[:0]
			tris, _ := raster.ProcessDraw(mesh, cmd.MVP, vp, cmd.DepthBias, triBuf)
			triBuf = tris
			r, g, b := materialColor(curFS, curTex)
			blend := cmd.Blend
			for t := range tris {
				raster.RasterizeQuads(&tris[t], clip, func(q *raster.Quad) {
					var mask uint8
					if blend {
						mask = depth.TestQuadReadOnly(q)
					} else {
						mask = depth.TestQuad(q)
					}
					for s := 0; s < 4; s++ {
						if mask&(1<<s) == 0 {
							continue
						}
						x := q.X + (s & 1)
						y := q.Y + (s >> 1)
						if x >= vp.Width || y >= vp.Height {
							continue
						}
						// Depth cue: nearer is brighter.
						shade := 1 - 0.6*q.Depth[s]
						pr := uint8(float64(r) * shade)
						pg := uint8(float64(g) * shade)
						pb := uint8(float64(b) * shade)
						if blend {
							old := img.RGBAAt(x, y)
							pr = uint8((uint16(old.R) + uint16(pr)) / 2)
							pg = uint8((uint16(old.G) + uint16(pg)) / 2)
							pb = uint8((uint16(old.B) + uint16(pb)) / 2)
						}
						img.SetRGBA(x, y, color.RGBA{R: pr, G: pg, B: pb, A: 255})
					}
				})
			}
		}
	}
	return img, nil
}

// materialColor derives a stable, saturated color from the bound
// fragment shader and texture ids.
func materialColor(fs, tex int) (r, g, b uint8) {
	h := uint64(fs)*0x9e3779b97f4a7c15 + uint64(tex)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	r = uint8(96 + h%160)
	g = uint8(96 + (h>>8)%160)
	b = uint8(96 + (h>>16)%160)
	return r, g, b
}
