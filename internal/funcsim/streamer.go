package funcsim

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/raster"
	"repro/internal/shader"
)

// Streamer characterizes frames one at a time — the incremental twin of
// Run. It owns the reusable rasterization scratch (depth buffer,
// triangle buffer), so profiling a frame allocates nothing beyond the
// profile's count vectors, and frames are characterized independently:
// the depth buffer is cleared and all binding state reset at every
// frame start, exactly as Run does, so ProfileInto(f) is a pure
// function of frame f's commands and the trace resources.
//
// This is what lets the streaming sampler (internal/stream) consume an
// unbounded frame sequence with O(1) characterization state instead of
// materializing a whole funcsim.Result.
type Streamer struct {
	res    resources
	trace  *gltrace.Trace // nil in resource mode
	depth  *raster.DepthBuffer
	clip   geom.AABB2
	triBuf []raster.ScreenTriangle

	vsStatic []shader.Cost
	fsStatic []shader.Cost
}

// resources is the frame-independent part of a trace: everything a
// single frame's command stream references.
type resources struct {
	name     string
	viewport geom.Viewport
	vs, fs   []*shader.Program
	meshes   []gltrace.Mesh
	textures []gltrace.Texture
}

// NewStreamer builds a streamer over a trace's resources. The trace
// must validate; its frames are profiled on demand with ProfileAt.
func NewStreamer(tr *gltrace.Trace) (*Streamer, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return newStreamer(resources{
		name:     tr.Name,
		viewport: tr.Viewport,
		vs:       tr.VertexShaders,
		fs:       tr.FragmentShaders,
		meshes:   tr.Meshes,
		textures: tr.Textures,
	}, tr)
}

// NewResourceStreamer builds a streamer from bare resources, for frame
// streams that arrive without a containing trace (the megsimd
// chunked-upload endpoint). The resources are validated by wrapping
// them in a zero-frame trace.
func NewResourceStreamer(name string, vp geom.Viewport, vs, fs []*shader.Program, meshes []gltrace.Mesh, textures []gltrace.Texture) (*Streamer, error) {
	probe := &gltrace.Trace{
		Name:            name,
		Viewport:        vp,
		VertexShaders:   vs,
		FragmentShaders: fs,
		Meshes:          meshes,
		Textures:        textures,
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return newStreamer(resources{
		name: name, viewport: vp, vs: vs, fs: fs, meshes: meshes, textures: textures,
	}, nil)
}

func newStreamer(res resources, tr *gltrace.Trace) (*Streamer, error) {
	s := &Streamer{
		res:   res,
		depth: raster.NewDepthBuffer(res.viewport.Width, res.viewport.Height),
		clip: geom.AABB2{Max: geom.Vec2{
			X: float64(res.viewport.Width), Y: float64(res.viewport.Height),
		}},
	}
	s.trace = tr
	for _, p := range res.vs {
		s.vsStatic = append(s.vsStatic, p.StaticCost())
	}
	for _, p := range res.fs {
		s.fsStatic = append(s.fsStatic, p.StaticCost())
	}
	return s, nil
}

// Static returns the per-program static costs (instruction counts and
// texture weights), the first thing the paper's characterization pass
// collects and the only global state the streaming sampler needs before
// the first frame arrives.
func (s *Streamer) Static() (vs, fs []shader.Cost) { return s.vsStatic, s.fsStatic }

// Name returns the workload name of the streamer's resources.
func (s *Streamer) Name() string { return s.res.name }

// NumFrames returns the trace length (0 in resource mode).
func (s *Streamer) NumFrames() int {
	if s.trace == nil {
		return 0
	}
	return s.trace.NumFrames()
}

// ProfileAt profiles frame f of the streamer's trace into dst. Only
// valid for trace-backed streamers. The trace was validated whole at
// NewStreamer, so no per-frame re-validation happens here.
func (s *Streamer) ProfileAt(dst *FrameProfile, f int) error {
	if s.trace == nil {
		return fmt.Errorf("funcsim: streamer has no trace (resource mode)")
	}
	if f < 0 || f >= s.trace.NumFrames() {
		return fmt.Errorf("funcsim: frame %d out of range [0,%d)", f, s.trace.NumFrames())
	}
	s.profileInto(dst, &s.trace.Frames[f], f)
	return nil
}

// ProfileInto characterizes one frame's command stream into dst,
// reusing dst's count slices when their lengths match. The frame's
// commands are validated against the streamer's resources first —
// malformed frames (out-of-range mesh/shader/texture references, draws
// with no program bound) return an error and leave dst untouched, so a
// hostile stream can never panic the rasterizer.
func (s *Streamer) ProfileInto(dst *FrameProfile, frame *gltrace.Frame, index int) error {
	if err := s.validateFrame(frame); err != nil {
		return err
	}
	s.profileInto(dst, frame, index)
	return nil
}

// profileInto is ProfileInto after validation: the shared per-frame
// characterization body Run and the streaming sampler both execute.
func (s *Streamer) profileInto(dst *FrameProfile, frame *gltrace.Frame, index int) {
	*dst = FrameProfile{Frame: index, VSCount: resizeU64(dst.VSCount, len(s.res.vs)), FSCount: resizeU64(dst.FSCount, len(s.res.fs))}
	s.depth.Clear()

	curVS, curFS := -1, -1
	curTex := 0
	for ci := range frame.Commands {
		cmd := &frame.Commands[ci]
		switch cmd.Op {
		case gltrace.CmdBindProgram:
			curVS, curFS = cmd.VS, cmd.FS
		case gltrace.CmdBindTexture:
			if cmd.Unit == 0 {
				curTex = cmd.Texture
			}
		case gltrace.CmdClear:
			s.depth.Clear()
		case gltrace.CmdDraw:
			mesh := &s.res.meshes[cmd.Mesh]
			dst.VSCount[curVS] += uint64(len(mesh.Vertices))

			// Functionally execute the bound programs once per draw
			// with draw-derived inputs; lock-step warps make all
			// invocations of a draw structurally identical, so one
			// execution yields the per-draw functional digest.
			vsOut := s.res.vs[curVS].Exec(shader.Regs{
				cmd.MVP[3], cmd.MVP[7], cmd.MVP[11], cmd.DepthBias,
			}, nil)
			fsOut := s.res.fs[curFS].Exec(shader.Regs{
				cmd.MVP[3], cmd.MVP[7], 0.5, 0.5,
			}, proceduralSampler{tex: curTex})
			dst.Checksum = mixChecksum(dst.Checksum, vsOut.Regs, fsOut.Regs)

			s.triBuf = s.triBuf[:0]
			tris, gstats := raster.ProcessDraw(mesh, cmd.MVP, s.res.viewport, cmd.DepthBias, s.triBuf)
			s.triBuf = tris
			dst.PrimsIn += uint64(gstats.PrimsIn)
			dst.PrimsVisible += uint64(gstats.Visible)

			blend := cmd.Blend
			for t := range tris {
				raster.RasterizeQuads(&tris[t], s.clip, func(q *raster.Quad) {
					var surviving uint8
					if blend {
						// Transparent fragments are depth-tested but
						// never write depth.
						surviving = s.depth.TestQuadReadOnly(q)
					} else {
						surviving = s.depth.TestQuad(q)
					}
					if surviving == 0 {
						return
					}
					q.Mask = surviving
					n := uint64(q.Coverage())
					dst.FSCount[curFS] += n
					dst.Fragments += n
				})
			}
		}
	}
}

// validateFrame checks one frame's referential integrity against the
// streamer's resources — the per-frame slice of gltrace.Trace.Validate.
func (s *Streamer) validateFrame(frame *gltrace.Frame) error {
	bound := false
	for ci, cmd := range frame.Commands {
		switch cmd.Op {
		case gltrace.CmdBindProgram:
			if cmd.VS < 0 || cmd.VS >= len(s.res.vs) {
				return fmt.Errorf("funcsim: cmd %d binds missing vertex shader %d", ci, cmd.VS)
			}
			if cmd.FS < 0 || cmd.FS >= len(s.res.fs) {
				return fmt.Errorf("funcsim: cmd %d binds missing fragment shader %d", ci, cmd.FS)
			}
			bound = true
		case gltrace.CmdBindTexture:
			if cmd.Texture < 0 || cmd.Texture >= len(s.res.textures) {
				return fmt.Errorf("funcsim: cmd %d binds missing texture %d", ci, cmd.Texture)
			}
			if cmd.Unit < 0 || cmd.Unit >= 8 {
				return fmt.Errorf("funcsim: cmd %d binds sampler unit %d out of range", ci, cmd.Unit)
			}
		case gltrace.CmdDraw:
			if cmd.Mesh < 0 || cmd.Mesh >= len(s.res.meshes) {
				return fmt.Errorf("funcsim: cmd %d draws missing mesh %d", ci, cmd.Mesh)
			}
			if !bound {
				return fmt.Errorf("funcsim: cmd %d draws with no program bound", ci)
			}
		case gltrace.CmdClear:
			// always valid
		default:
			return fmt.Errorf("funcsim: cmd %d has unknown op %d", ci, int(cmd.Op))
		}
	}
	return nil
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
