// Package funcsim is the functional GPU simulator: it executes a trace's
// command stream — transforming geometry, binning, rasterizing and
// depth-testing exactly like the timing simulator, and functionally
// executing shader programs — but models no timing at all. Its output is
// the per-frame activity profile MEGsim characterizes frames with:
// per-shader execution counts (VSCV/FSCV) and primitive counts (PRIM).
//
// This mirrors TEAPOT's instrumented-Softpipe functional component: the
// characterization inputs are architecture-independent and cheap to
// collect (Section III-B of the paper), so running the functional
// simulator over the full sequence is the inexpensive first step of the
// methodology.
package funcsim

import (
	"fmt"
	"math"

	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/shader"
)

// FrameProfile is the raw per-frame activity measurement. The MEGsim
// core turns these into weighted vectors of characteristics.
type FrameProfile struct {
	// Frame is the frame index.
	Frame int
	// VSCount[i] is the number of invocations of vertex shader i
	// (vertices shaded under that program).
	VSCount []uint64
	// FSCount[i] is the number of invocations of fragment shader i
	// (fragments shaded after the early depth test).
	FSCount []uint64
	// PrimsIn and PrimsVisible count primitives before and after
	// clipping/culling; PrimsVisible is the PRIM characterization
	// parameter (the Tiling Engine's workload).
	PrimsIn      uint64
	PrimsVisible uint64
	// Fragments is the total shaded fragment count.
	Fragments uint64
	// Checksum is a deterministic digest of functional shader outputs,
	// usable to verify that two runs rendered identical frames.
	Checksum uint64
}

// Result is the functional simulation of a whole trace.
type Result struct {
	// Trace identifies the simulated workload.
	Trace string
	// Profiles has one entry per frame.
	Profiles []FrameProfile
	// VSStatic and FSStatic are the per-program static costs
	// (instruction counts and texture weights) collected during the
	// same pass, as the paper's first step does.
	VSStatic []shader.Cost
	FSStatic []shader.Cost
}

// proceduralSampler returns deterministic texel values derived from the
// texture id and coordinates, so functional execution has real data
// without texture images.
type proceduralSampler struct {
	tex int
}

func (p proceduralSampler) Sample(unit int, u, v float64, f shader.FilterMode) float64 {
	x := math.Sin(u*12.9898+v*78.233+float64(p.tex)*3.7+float64(unit)) * 43758.5453
	return x - math.Floor(x)
}

// Run functionally simulates every frame of the trace. The trace must
// validate.
func Run(trace *gltrace.Trace) (*Result, error) { return RunObs(trace, nil) }

// RunObs is Run with observability: when reg is enabled it receives the
// characterization workload counters ("funcsim.frames", ".draws",
// ".fragments") and a per-frame fragment-count histogram
// ("funcsim.frame_fragments"). A nil registry makes RunObs identical to
// Run.
func RunObs(trace *gltrace.Trace, reg *obs.Registry) (*Result, error) {
	st, err := NewStreamer(trace)
	if err != nil {
		return nil, err
	}
	var (
		cFrames    = reg.Counter("funcsim.frames")
		cDraws     = reg.Counter("funcsim.draws")
		cFragments = reg.Counter("funcsim.fragments")
		hFragments = reg.Histogram("funcsim.frame_fragments")
	)
	res := &Result{Trace: trace.Name}
	res.VSStatic, res.FSStatic = st.Static()

	res.Profiles = make([]FrameProfile, trace.NumFrames())
	for f := range trace.Frames {
		prof := &res.Profiles[f]
		if err := st.ProfileAt(prof, f); err != nil {
			return nil, err
		}
		cDraws.Add(uint64(trace.Frames[f].DrawCount()))
		cFrames.Inc()
		cFragments.Add(prof.Fragments)
		hFragments.Observe(prof.Fragments)
	}
	return res, nil
}

func mixChecksum(sum uint64, regSets ...shader.Regs) uint64 {
	for _, regs := range regSets {
		for _, r := range regs {
			bits := math.Float64bits(r)
			sum ^= bits + 0x9e3779b97f4a7c15 + (sum << 6) + (sum >> 2)
		}
	}
	return sum
}

// TotalInvocations returns the summed shader invocation counts of a
// profile (vertex + fragment), a coarse per-frame activity scalar.
func (p *FrameProfile) TotalInvocations() uint64 {
	var n uint64
	for _, c := range p.VSCount {
		n += c
	}
	for _, c := range p.FSCount {
		n += c
	}
	return n
}

// Validate checks internal consistency of a result against its trace.
func (r *Result) Validate(trace *gltrace.Trace) error {
	if r.Trace != trace.Name {
		return fmt.Errorf("funcsim: result for %q validated against trace %q", r.Trace, trace.Name)
	}
	if len(r.Profiles) != trace.NumFrames() {
		return fmt.Errorf("funcsim: %d profiles for %d frames", len(r.Profiles), trace.NumFrames())
	}
	for i := range r.Profiles {
		p := &r.Profiles[i]
		if p.Frame != i {
			return fmt.Errorf("funcsim: profile %d has frame index %d", i, p.Frame)
		}
		if len(p.VSCount) != len(trace.VertexShaders) || len(p.FSCount) != len(trace.FragmentShaders) {
			return fmt.Errorf("funcsim: profile %d has wrong vector lengths", i)
		}
		if p.PrimsVisible > p.PrimsIn {
			return fmt.Errorf("funcsim: profile %d has more visible than submitted primitives", i)
		}
	}
	return nil
}
