package geom

import "math"

// Mat4 is a 4x4 matrix in row-major order; element (row, col) is
// M[row*4+col]. Vectors are columns, so transforms compose left-to-right
// as C.Mul(B).Mul(A) applying A first.
type Mat4 [16]float64

// IdentityMat4 returns the identity matrix.
func IdentityMat4() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[r*4+k] * n[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// MulVec4 returns m * v.
func (m Mat4) MulVec4(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// TransformPoint applies m to the point p (w = 1) and returns the
// transformed point after perspective divide.
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	return m.MulVec4(p.ToVec4(1)).PerspectiveDivide()
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	return Mat4{
		1, 0, 0, t.X,
		0, 1, 0, t.Y,
		0, 0, 1, t.Z,
		0, 0, 0, 1,
	}
}

// ScaleUniform returns a uniform scaling matrix.
func ScaleUniform(s float64) Mat4 {
	return ScaleXYZ(Vec3{s, s, s})
}

// ScaleXYZ returns a per-axis scaling matrix.
func ScaleXYZ(s Vec3) Mat4 {
	return Mat4{
		s.X, 0, 0, 0,
		0, s.Y, 0, 0,
		0, 0, s.Z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// LookAt returns a view matrix placing the camera at eye, looking at
// center, with the given up direction.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	rot := Mat4{
		s.X, s.Y, s.Z, 0,
		u.X, u.Y, u.Z, 0,
		-f.X, -f.Y, -f.Z, 0,
		0, 0, 0, 1,
	}
	return rot.Mul(Translate(eye.Scale(-1)))
}

// Perspective returns a perspective projection matrix with the given
// vertical field of view (radians), aspect ratio and near/far planes.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// Orthographic returns an orthographic projection matrix mapping the given
// box to clip space.
func Orthographic(left, right, bottom, top, near, far float64) Mat4 {
	return Mat4{
		2 / (right - left), 0, 0, -(right + left) / (right - left),
		0, 2 / (top - bottom), 0, -(top + bottom) / (top - bottom),
		0, 0, -2 / (far - near), -(far + near) / (far - near),
		0, 0, 0, 1,
	}
}

// Viewport maps normalized device coordinates (x, y in [-1, 1], NDC y up)
// to screen-space pixel coordinates for a width x height screen with the
// origin at the top-left and y growing downward. The returned Z preserves
// the NDC depth remapped to [0, 1].
type Viewport struct {
	Width, Height int
}

// ToScreen maps an NDC position to screen space.
func (vp Viewport) ToScreen(ndc Vec3) Vec3 {
	return Vec3{
		X: (ndc.X + 1) * 0.5 * float64(vp.Width),
		Y: (1 - ndc.Y) * 0.5 * float64(vp.Height),
		Z: (ndc.Z + 1) * 0.5,
	}
}
