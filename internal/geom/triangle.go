package geom

import "math"

// AABB2 is an axis-aligned 2D bounding box; Max is inclusive.
type AABB2 struct {
	Min, Max Vec2
}

// Empty reports whether the box contains no area.
func (b AABB2) Empty() bool {
	return b.Max.X < b.Min.X || b.Max.Y < b.Min.Y
}

// Intersect returns the intersection of b and o (possibly empty).
func (b AABB2) Intersect(o AABB2) AABB2 {
	return AABB2{
		Min: Vec2{math.Max(b.Min.X, o.Min.X), math.Max(b.Min.Y, o.Min.Y)},
		Max: Vec2{math.Min(b.Max.X, o.Max.X), math.Min(b.Max.Y, o.Max.Y)},
	}
}

// Union returns the smallest box containing both b and o.
func (b AABB2) Union(o AABB2) AABB2 {
	return AABB2{
		Min: Vec2{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y)},
		Max: Vec2{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y)},
	}
}

// Triangle2 is a screen-space triangle with per-vertex depth.
type Triangle2 struct {
	V [3]Vec3 // X, Y in pixels; Z is depth in [0, 1]
}

// Bounds returns the 2D bounding box of the triangle.
func (t Triangle2) Bounds() AABB2 {
	minX := math.Min(t.V[0].X, math.Min(t.V[1].X, t.V[2].X))
	minY := math.Min(t.V[0].Y, math.Min(t.V[1].Y, t.V[2].Y))
	maxX := math.Max(t.V[0].X, math.Max(t.V[1].X, t.V[2].X))
	maxY := math.Max(t.V[0].Y, math.Max(t.V[1].Y, t.V[2].Y))
	return AABB2{Min: Vec2{minX, minY}, Max: Vec2{maxX, maxY}}
}

// SignedArea returns the signed area of the triangle in pixels^2. The
// sign encodes winding: positive for counter-clockwise in a y-down
// coordinate system.
func (t Triangle2) SignedArea() float64 {
	a := Vec2{t.V[1].X - t.V[0].X, t.V[1].Y - t.V[0].Y}
	b := Vec2{t.V[2].X - t.V[0].X, t.V[2].Y - t.V[0].Y}
	return a.Cross(b) / 2
}

// Area returns the absolute area in pixels^2.
func (t Triangle2) Area() float64 {
	return math.Abs(t.SignedArea())
}

// Degenerate reports whether the triangle has (near) zero area.
func (t Triangle2) Degenerate() bool {
	return t.Area() < 1e-9
}

// Barycentric returns the barycentric coordinates (l0, l1, l2) of point p
// with respect to the triangle, and ok=false for degenerate triangles.
func (t Triangle2) Barycentric(p Vec2) (l0, l1, l2 float64, ok bool) {
	x0, y0 := t.V[0].X, t.V[0].Y
	x1, y1 := t.V[1].X, t.V[1].Y
	x2, y2 := t.V[2].X, t.V[2].Y
	den := (y1-y2)*(x0-x2) + (x2-x1)*(y0-y2)
	if math.Abs(den) < 1e-12 {
		return 0, 0, 0, false
	}
	l0 = ((y1-y2)*(p.X-x2) + (x2-x1)*(p.Y-y2)) / den
	l1 = ((y2-y0)*(p.X-x2) + (x0-x2)*(p.Y-y2)) / den
	l2 = 1 - l0 - l1
	return l0, l1, l2, true
}

// Contains reports whether point p lies inside (or on the boundary of)
// the triangle.
func (t Triangle2) Contains(p Vec2) bool {
	l0, l1, l2, ok := t.Barycentric(p)
	if !ok {
		return false
	}
	const eps = -1e-9
	return l0 >= eps && l1 >= eps && l2 >= eps
}

// DepthAt interpolates the per-vertex depth at point p. ok is false for
// degenerate triangles or points outside the plane parameterization.
func (t Triangle2) DepthAt(p Vec2) (float64, bool) {
	l0, l1, l2, ok := t.Barycentric(p)
	if !ok {
		return 0, false
	}
	return l0*t.V[0].Z + l1*t.V[1].Z + l2*t.V[2].Z, true
}

// OverlappedTiles returns the inclusive tile-coordinate range
// [tx0, tx1] x [ty0, ty1] of size tileSize covered by the triangle's
// bounding box, clipped to a grid of tilesX x tilesY tiles. ok is false
// when the triangle is completely off-grid.
//
// This is the operation the Polygon List Builder performs for every
// primitive (Section II-A of the paper).
func (t Triangle2) OverlappedTiles(tileSize, tilesX, tilesY int) (tx0, ty0, tx1, ty1 int, ok bool) {
	b := t.Bounds()
	tx0 = int(math.Floor(b.Min.X / float64(tileSize)))
	ty0 = int(math.Floor(b.Min.Y / float64(tileSize)))
	tx1 = int(math.Floor(b.Max.X / float64(tileSize)))
	ty1 = int(math.Floor(b.Max.Y / float64(tileSize)))
	if tx1 < 0 || ty1 < 0 || tx0 >= tilesX || ty0 >= tilesY {
		return 0, 0, 0, 0, false
	}
	if tx0 < 0 {
		tx0 = 0
	}
	if ty0 < 0 {
		ty0 = 0
	}
	if tx1 >= tilesX {
		tx1 = tilesX - 1
	}
	if ty1 >= tilesY {
		ty1 = tilesY - 1
	}
	return tx0, ty0, tx1, ty1, true
}
