package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func vecsAlmostEqual(a, b Vec3, eps float64) bool {
	return almostEqual(a.X, b.X, eps) && almostEqual(a.Y, b.Y, eps) && almostEqual(a.Z, b.Z, eps)
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestVec3CrossOrthogonality(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.Cross(y); got != (Vec3{0, 0, 1}) {
		t.Fatalf("x cross y = %v, want z", got)
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		a := Vec3{r.Norm(0, 5), r.Norm(0, 5), r.Norm(0, 5)}
		b := Vec3{r.Norm(0, 5), r.Norm(0, 5), r.Norm(0, 5)}
		c := a.Cross(b)
		return almostEqual(c.Dot(a), 0, 1e-6) && almostEqual(c.Dot(b), 0, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if !almostEqual(v.Len(), 1, 1e-12) {
		t.Fatalf("normalized length = %v", v.Len())
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Fatal("normalizing zero vector should return zero")
	}
}

func TestPerspectiveDivide(t *testing.T) {
	v := Vec4{2, 4, 6, 2}
	if got := v.PerspectiveDivide(); got != (Vec3{1, 2, 3}) {
		t.Fatalf("PerspectiveDivide = %v", got)
	}
	if got := (Vec4{1, 1, 1, 0}).PerspectiveDivide(); got != (Vec3{}) {
		t.Fatal("divide by w=0 should return zero vector")
	}
}

func TestMat4Identity(t *testing.T) {
	id := IdentityMat4()
	v := Vec4{1, 2, 3, 1}
	if got := id.MulVec4(v); got != v {
		t.Fatalf("I*v = %v, want %v", got, v)
	}
	m := Translate(Vec3{5, 6, 7})
	if got := id.Mul(m); got != m {
		t.Fatal("I*M != M")
	}
	if got := m.Mul(id); got != m {
		t.Fatal("M*I != M")
	}
}

func TestTranslateAndScale(t *testing.T) {
	p := Vec3{1, 1, 1}
	if got := Translate(Vec3{2, 3, 4}).TransformPoint(p); got != (Vec3{3, 4, 5}) {
		t.Fatalf("translate = %v", got)
	}
	if got := ScaleUniform(2).TransformPoint(p); got != (Vec3{2, 2, 2}) {
		t.Fatalf("scale = %v", got)
	}
}

func TestRotationsPreserveLength(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		p := Vec3{r.Norm(0, 3), r.Norm(0, 3), r.Norm(0, 3)}
		angle := r.Range(-math.Pi, math.Pi)
		for _, rot := range []Mat4{RotateX(angle), RotateY(angle), RotateZ(angle)} {
			q := rot.TransformPoint(p)
			if !almostEqual(q.Len(), p.Len(), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	got := RotateZ(math.Pi / 2).TransformPoint(Vec3{1, 0, 0})
	if !vecsAlmostEqual(got, Vec3{0, 1, 0}, 1e-12) {
		t.Fatalf("RotateZ(90°)·x = %v, want y", got)
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := Vec3{3, 4, 5}
	view := LookAt(eye, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	if got := view.TransformPoint(eye); !vecsAlmostEqual(got, Vec3{}, 1e-9) {
		t.Fatalf("view(eye) = %v, want origin", got)
	}
	// The look target must land on the negative Z axis.
	got := view.TransformPoint(Vec3{0, 0, 0})
	if !almostEqual(got.X, 0, 1e-9) || !almostEqual(got.Y, 0, 1e-9) || got.Z >= 0 {
		t.Fatalf("view(center) = %v, want on -Z axis", got)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	proj := Perspective(math.Pi/3, 16.0/9.0, 0.1, 100)
	near := proj.MulVec4(Vec4{0, 0, -1, 1}).PerspectiveDivide()
	far := proj.MulVec4(Vec4{0, 0, -50, 1}).PerspectiveDivide()
	if near.Z >= far.Z {
		t.Fatalf("nearer point must have smaller NDC depth: near=%v far=%v", near.Z, far.Z)
	}
}

func TestOrthographicMapsCorners(t *testing.T) {
	proj := Orthographic(0, 100, 0, 50, -1, 1)
	bl := proj.TransformPoint(Vec3{0, 0, 0})
	tr := proj.TransformPoint(Vec3{100, 50, 0})
	if !vecsAlmostEqual(bl, Vec3{-1, -1, 0}, 1e-12) {
		t.Fatalf("bottom-left = %v, want (-1,-1,0)", bl)
	}
	if !vecsAlmostEqual(tr, Vec3{1, 1, 0}, 1e-12) {
		t.Fatalf("top-right = %v, want (1,1,0)", tr)
	}
}

func TestViewportMapping(t *testing.T) {
	vp := Viewport{Width: 1440, Height: 720}
	center := vp.ToScreen(Vec3{0, 0, 0})
	if center.X != 720 || center.Y != 360 || center.Z != 0.5 {
		t.Fatalf("center = %v", center)
	}
	topLeft := vp.ToScreen(Vec3{-1, 1, -1})
	if topLeft.X != 0 || topLeft.Y != 0 || topLeft.Z != 0 {
		t.Fatalf("topLeft = %v", topLeft)
	}
	bottomRight := vp.ToScreen(Vec3{1, -1, 1})
	if bottomRight.X != 1440 || bottomRight.Y != 720 || bottomRight.Z != 1 {
		t.Fatalf("bottomRight = %v", bottomRight)
	}
}

func TestTriangleArea(t *testing.T) {
	tri := Triangle2{V: [3]Vec3{{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}}
	if got := tri.Area(); got != 50 {
		t.Fatalf("Area = %v, want 50", got)
	}
	deg := Triangle2{V: [3]Vec3{{0, 0, 0}, {5, 5, 0}, {10, 10, 0}}}
	if !deg.Degenerate() {
		t.Fatal("collinear triangle should be degenerate")
	}
}

func TestTriangleContains(t *testing.T) {
	tri := Triangle2{V: [3]Vec3{{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}}
	if !tri.Contains(Vec2{2, 2}) {
		t.Fatal("(2,2) should be inside")
	}
	if tri.Contains(Vec2{8, 8}) {
		t.Fatal("(8,8) should be outside")
	}
	if !tri.Contains(Vec2{0, 0}) {
		t.Fatal("vertex should count as inside")
	}
}

func TestBarycentricPartitionOfUnity(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tri := Triangle2{V: [3]Vec3{
			{r.Range(0, 100), r.Range(0, 100), 0},
			{r.Range(0, 100), r.Range(0, 100), 0},
			{r.Range(0, 100), r.Range(0, 100), 0},
		}}
		if tri.Degenerate() {
			return true
		}
		p := Vec2{r.Range(0, 100), r.Range(0, 100)}
		l0, l1, l2, ok := tri.Barycentric(p)
		return ok && almostEqual(l0+l1+l2, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDepthInterpolation(t *testing.T) {
	tri := Triangle2{V: [3]Vec3{{0, 0, 0.0}, {10, 0, 1.0}, {0, 10, 0.5}}}
	d, ok := tri.DepthAt(Vec2{0, 0})
	if !ok || !almostEqual(d, 0, 1e-12) {
		t.Fatalf("depth at v0 = %v", d)
	}
	d, ok = tri.DepthAt(Vec2{10, 0})
	if !ok || !almostEqual(d, 1, 1e-12) {
		t.Fatalf("depth at v1 = %v", d)
	}
	// Centroid depth should be the mean of vertex depths.
	d, ok = tri.DepthAt(Vec2{10.0 / 3, 10.0 / 3})
	if !ok || !almostEqual(d, 0.5, 1e-9) {
		t.Fatalf("depth at centroid = %v, want 0.5", d)
	}
}

func TestOverlappedTiles(t *testing.T) {
	// 4x4 grid of 32px tiles (128x128 screen).
	tri := Triangle2{V: [3]Vec3{{10, 10, 0}, {70, 10, 0}, {10, 70, 0}}}
	tx0, ty0, tx1, ty1, ok := tri.OverlappedTiles(32, 4, 4)
	if !ok || tx0 != 0 || ty0 != 0 || tx1 != 2 || ty1 != 2 {
		t.Fatalf("tiles = (%d,%d)-(%d,%d) ok=%v, want (0,0)-(2,2)", tx0, ty0, tx1, ty1, ok)
	}
}

func TestOverlappedTilesClipping(t *testing.T) {
	// Partially off-screen triangle must clamp to the grid.
	tri := Triangle2{V: [3]Vec3{{-50, -50, 0}, {40, 10, 0}, {10, 40, 0}}}
	tx0, ty0, tx1, ty1, ok := tri.OverlappedTiles(32, 4, 4)
	if !ok || tx0 != 0 || ty0 != 0 || tx1 != 1 || ty1 != 1 {
		t.Fatalf("tiles = (%d,%d)-(%d,%d) ok=%v", tx0, ty0, tx1, ty1, ok)
	}
	// Entirely off-screen triangle yields ok=false.
	off := Triangle2{V: [3]Vec3{{-100, -100, 0}, {-50, -100, 0}, {-100, -50, 0}}}
	if _, _, _, _, ok := off.OverlappedTiles(32, 4, 4); ok {
		t.Fatal("off-screen triangle should not overlap tiles")
	}
}

func TestAABBIntersectUnion(t *testing.T) {
	a := AABB2{Min: Vec2{0, 0}, Max: Vec2{10, 10}}
	b := AABB2{Min: Vec2{5, 5}, Max: Vec2{15, 15}}
	i := a.Intersect(b)
	if i.Min != (Vec2{5, 5}) || i.Max != (Vec2{10, 10}) {
		t.Fatalf("Intersect = %+v", i)
	}
	u := a.Union(b)
	if u.Min != (Vec2{0, 0}) || u.Max != (Vec2{15, 15}) {
		t.Fatalf("Union = %+v", u)
	}
	c := AABB2{Min: Vec2{20, 20}, Max: Vec2{30, 30}}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint boxes should intersect empty")
	}
}

func TestLerp(t *testing.T) {
	a := Vec4{0, 0, 0, 0}
	b := Vec4{10, 20, 30, 40}
	mid := Lerp(a, b, 0.5)
	if mid != (Vec4{5, 10, 15, 20}) {
		t.Fatalf("Lerp = %v", mid)
	}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp wrong")
	}
}
