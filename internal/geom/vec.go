// Package geom provides the 3D math used by the graphics pipeline:
// vectors, 4x4 matrices, transforms, triangles, bounding boxes and the
// viewport mapping from clip space to screen space.
//
// Conventions: right-handed coordinate system, column vectors, matrices
// multiply vectors on the left (M * v), clip space is OpenGL-style
// ([-w, w] per axis before perspective divide), screen origin at the
// top-left with y growing downward.
package geom

import "math"

// Vec2 is a 2-component vector.
type Vec2 struct {
	X, Y float64
}

// Vec3 is a 3-component vector.
type Vec3 struct {
	X, Y, Z float64
}

// Vec4 is a 4-component homogeneous vector.
type Vec4 struct {
	X, Y, Z, W float64
}

// Add returns a + b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a - b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a scaled by s.
func (a Vec2) Scale(s float64) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Dot returns the dot product of a and b.
func (a Vec2) Dot(b Vec2) float64 { return a.X*b.X + a.Y*b.Y }

// Cross returns the 2D cross product (z component of the 3D cross product
// of the embedded vectors). Positive when b is counter-clockwise from a.
func (a Vec2) Cross(b Vec2) float64 { return a.X*b.Y - a.Y*b.X }

// Len returns the Euclidean length of a.
func (a Vec2) Len() float64 { return math.Hypot(a.X, a.Y) }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product of a and b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a unit vector in the direction of a, or the zero
// vector when a has zero length.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return Vec3{}
	}
	return a.Scale(1 / l)
}

// ToVec4 embeds a into homogeneous coordinates with the given w.
func (a Vec3) ToVec4(w float64) Vec4 { return Vec4{a.X, a.Y, a.Z, w} }

// Add returns a + b.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W}
}

// Sub returns a - b.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W}
}

// Scale returns a scaled by s.
func (a Vec4) Scale(s float64) Vec4 {
	return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s}
}

// Dot returns the 4-component dot product of a and b.
func (a Vec4) Dot(b Vec4) float64 {
	return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W
}

// PerspectiveDivide returns the normalized device coordinates a/w. It
// returns the zero vector if w is 0 (degenerate vertex).
func (a Vec4) PerspectiveDivide() Vec3 {
	if a.W == 0 {
		return Vec3{}
	}
	inv := 1 / a.W
	return Vec3{a.X * inv, a.Y * inv, a.Z * inv}
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b Vec4, t float64) Vec4 {
	return a.Add(b.Sub(a).Scale(t))
}

// Lerp3 linearly interpolates between a and b by t in [0, 1].
func Lerp3(a, b Vec3, t float64) Vec3 {
	return a.Add(b.Sub(a).Scale(t))
}

// Clamp returns x clamped to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
