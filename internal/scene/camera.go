package scene

import (
	"math"

	"repro/internal/geom"
)

// Camera produces view-projection matrices over time. Implementations
// model the camera behaviours of the synthetic games: a chase camera
// following a racer, a fixed orthographic 2D camera, a side-scrolling
// camera.
type Camera interface {
	// ViewProjection returns the combined projection * view matrix at
	// time t (seconds since sequence start).
	ViewProjection(t float64) geom.Mat4
}

// ChaseCamera follows a point moving along a track, looking ahead —
// the typical third-person racing camera.
type ChaseCamera struct {
	// Path returns the chased position at time t.
	Path func(t float64) geom.Vec3
	// Height and Back offset the eye from the chased point.
	Height, Back float64
	// FovY is the vertical field of view in radians.
	FovY float64
	// Aspect is the viewport aspect ratio.
	Aspect float64
}

// ViewProjection implements Camera.
func (c ChaseCamera) ViewProjection(t float64) geom.Mat4 {
	target := c.Path(t)
	ahead := c.Path(t + 0.1)
	dir := ahead.Sub(target).Normalize()
	if dir.Len() == 0 {
		dir = geom.Vec3{Z: -1}
	}
	eye := target.Sub(dir.Scale(c.Back)).Add(geom.Vec3{Y: c.Height})
	view := geom.LookAt(eye, target.Add(dir.Scale(2)), geom.Vec3{Y: 1})
	proj := geom.Perspective(c.FovY, c.Aspect, 0.1, 200)
	return proj.Mul(view)
}

// Ortho2D is the fixed orthographic camera of 2D games: world units map
// directly to the [0, W] x [0, H] screen plane.
type Ortho2D struct {
	Width, Height float64
}

// ViewProjection implements Camera.
func (c Ortho2D) ViewProjection(float64) geom.Mat4 {
	return geom.Orthographic(0, c.Width, 0, c.Height, -10, 10)
}

// SideScroller is an orthographic camera translating horizontally with
// constant speed — endless runners and platformers.
type SideScroller struct {
	Width, Height float64
	// Speed is in world units per second.
	Speed float64
}

// ViewProjection implements Camera.
func (c SideScroller) ViewProjection(t float64) geom.Mat4 {
	x := c.Speed * t
	return geom.Orthographic(x, x+c.Width, 0, c.Height, -10, 10)
}

// CircuitPath returns a closed racing-circuit path: an ellipse with
// radius rx x rz traversed once every period seconds, with gentle
// elevation change.
func CircuitPath(rx, rz, period float64) func(t float64) geom.Vec3 {
	return func(t float64) geom.Vec3 {
		a := 2 * math.Pi * t / period
		return geom.Vec3{
			X: rx * math.Cos(a),
			Y: 0.5 + 0.3*math.Sin(2*a),
			Z: rz * math.Sin(a),
		}
	}
}

// StraightPath returns a path moving in -Z at the given speed — endless
// runner courses.
func StraightPath(speed float64) func(t float64) geom.Vec3 {
	return func(t float64) geom.Vec3 {
		return geom.Vec3{Z: -speed * t}
	}
}

// Instance places a mesh in the world: a model matrix builder.
type Instance struct {
	Position geom.Vec3
	Scale    geom.Vec3
	// YawSpeed spins the instance about Y over time (radians/second).
	YawSpeed float64
	// BobAmp/BobFreq add vertical oscillation (pickups, floating UI).
	BobAmp, BobFreq float64
}

// Model returns the instance's model matrix at time t.
func (in Instance) Model(t float64) geom.Mat4 {
	s := in.Scale
	if s == (geom.Vec3{}) {
		s = geom.Vec3{X: 1, Y: 1, Z: 1}
	}
	pos := in.Position
	if in.BobAmp != 0 {
		pos.Y += in.BobAmp * math.Sin(2*math.Pi*in.BobFreq*t)
	}
	m := geom.Translate(pos)
	if in.YawSpeed != 0 {
		m = m.Mul(geom.RotateY(in.YawSpeed * t))
	}
	return m.Mul(geom.ScaleXYZ(s))
}
