package scene

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestQuad(t *testing.T) {
	q := Quad("q")
	if q.TriangleCount() != 2 {
		t.Fatalf("quad triangles = %d, want 2", q.TriangleCount())
	}
	if len(q.Vertices) != 4 {
		t.Fatalf("quad vertices = %d, want 4", len(q.Vertices))
	}
}

func TestGridCounts(t *testing.T) {
	g := Grid("g", 4, 3, nil)
	if got, want := len(g.Vertices), 5*4; got != want {
		t.Fatalf("grid vertices = %d, want %d", got, want)
	}
	if got, want := g.TriangleCount(), 4*3*2; got != want {
		t.Fatalf("grid triangles = %d, want %d", got, want)
	}
	for _, idx := range g.Indices {
		if idx < 0 || idx >= len(g.Vertices) {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestGridHeightFunction(t *testing.T) {
	g := Grid("h", 2, 2, func(x, z float64) float64 { return x + z })
	found := false
	for _, v := range g.Vertices {
		if math.Abs(v.Pos.Y-(v.Pos.X+v.Pos.Z)) > 1e-12 {
			t.Fatalf("height mismatch at %+v", v.Pos)
		}
		if v.Pos.Y != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("height function never applied")
	}
}

func TestBox(t *testing.T) {
	b := Box("b")
	if b.TriangleCount() != 12 {
		t.Fatalf("box triangles = %d, want 12", b.TriangleCount())
	}
	// All vertices on the unit cube surface.
	for _, v := range b.Vertices {
		if math.Abs(v.Pos.X) != 0.5 || math.Abs(v.Pos.Y) != 0.5 || math.Abs(v.Pos.Z) != 0.5 {
			t.Fatalf("box vertex off surface: %+v", v.Pos)
		}
	}
}

func TestSphere(t *testing.T) {
	s := Sphere("s", 6, 8)
	if got, want := s.TriangleCount(), 2*6*8; got != want {
		t.Fatalf("sphere triangles = %d, want %d", got, want)
	}
	for _, v := range s.Vertices {
		if r := v.Pos.Len(); math.Abs(r-0.5) > 1e-9 {
			t.Fatalf("sphere vertex radius = %v, want 0.5", r)
		}
	}
}

func TestRoadStrip(t *testing.T) {
	r := RoadStrip("r", 10, 0.2)
	if got, want := r.TriangleCount(), 10*2*2; got != want {
		t.Fatalf("road triangles = %d, want %d", got, want)
	}
}

func TestMeshPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"grid":   func() { Grid("g", 0, 1, nil) },
		"sphere": func() { Sphere("s", 1, 2) },
		"road":   func() { RoadStrip("r", 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChaseCameraFollowsPath(t *testing.T) {
	cam := ChaseCamera{
		Path:   CircuitPath(10, 8, 30),
		Height: 2, Back: 4,
		FovY: math.Pi / 3, Aspect: 2,
	}
	// The chased point should always land near the screen center (in
	// front of the camera: NDC z in (-1,1), x,y small).
	for _, tm := range []float64{0, 5, 12.5, 29} {
		target := CircuitPath(10, 8, 30)(tm)
		ndc := cam.ViewProjection(tm).TransformPoint(target)
		if math.Abs(ndc.X) > 0.7 || math.Abs(ndc.Y) > 0.7 {
			t.Fatalf("t=%v: chased point NDC = %+v, want near center", tm, ndc)
		}
	}
}

func TestOrtho2DMapsScreenCorners(t *testing.T) {
	cam := Ortho2D{Width: 320, Height: 180}
	m := cam.ViewProjection(0)
	bl := m.TransformPoint(geom.Vec3{X: 0, Y: 0})
	tr := m.TransformPoint(geom.Vec3{X: 320, Y: 180})
	if math.Abs(bl.X+1) > 1e-12 || math.Abs(bl.Y+1) > 1e-12 {
		t.Fatalf("bottom-left NDC = %+v", bl)
	}
	if math.Abs(tr.X-1) > 1e-12 || math.Abs(tr.Y-1) > 1e-12 {
		t.Fatalf("top-right NDC = %+v", tr)
	}
}

func TestSideScrollerAdvances(t *testing.T) {
	cam := SideScroller{Width: 320, Height: 180, Speed: 100}
	p := geom.Vec3{X: 500, Y: 90}
	early := cam.ViewProjection(0).TransformPoint(p)
	later := cam.ViewProjection(4).TransformPoint(p)
	if later.X >= early.X {
		t.Fatalf("point should move left as camera scrolls right: %v -> %v", early.X, later.X)
	}
}

func TestCircuitPathClosed(t *testing.T) {
	p := CircuitPath(10, 8, 30)
	a, b := p(0), p(30)
	if a.Sub(b).Len() > 1e-9 {
		t.Fatalf("circuit not closed: %v vs %v", a, b)
	}
}

func TestInstanceModel(t *testing.T) {
	in := Instance{Position: geom.Vec3{X: 5}, Scale: geom.Vec3{X: 2, Y: 2, Z: 2}}
	p := in.Model(0).TransformPoint(geom.Vec3{X: 1, Y: 0, Z: 0})
	if p != (geom.Vec3{X: 7}) {
		t.Fatalf("model transform = %+v, want (7,0,0)", p)
	}
	// Default scale is identity.
	def := Instance{Position: geom.Vec3{Y: 1}}
	q := def.Model(0).TransformPoint(geom.Vec3{X: 1})
	if q != (geom.Vec3{X: 1, Y: 1}) {
		t.Fatalf("default-scale transform = %+v", q)
	}
}

func TestInstanceBobOscillates(t *testing.T) {
	in := Instance{BobAmp: 1, BobFreq: 0.25} // period 4s, peak at t=1
	top := in.Model(1).TransformPoint(geom.Vec3{})
	mid := in.Model(0).TransformPoint(geom.Vec3{})
	if math.Abs(top.Y-1) > 1e-9 || math.Abs(mid.Y) > 1e-9 {
		t.Fatalf("bob: t=1 y=%v (want 1), t=0 y=%v (want 0)", top.Y, mid.Y)
	}
}

func TestInstanceYawPreservesRadius(t *testing.T) {
	in := Instance{YawSpeed: 1}
	p0 := in.Model(0).TransformPoint(geom.Vec3{X: 3})
	p1 := in.Model(2).TransformPoint(geom.Vec3{X: 3})
	r0 := math.Hypot(p0.X, p0.Z)
	r1 := math.Hypot(p1.X, p1.Z)
	if math.Abs(r0-r1) > 1e-9 {
		t.Fatalf("yaw changed radius: %v vs %v", r0, r1)
	}
	if p0.Sub(p1).Len() < 1e-6 {
		t.Fatal("yaw did not rotate the point")
	}
}
