// Package scene provides the procedural geometry and camera machinery
// used to synthesize game-like workloads: parametric meshes (quads,
// grids, boxes, spheres), camera path models and object animation
// helpers. Workload generators compose these into per-frame command
// streams.
package scene

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/gltrace"
)

// Quad returns a unit quad in the XY plane, centered at the origin,
// made of two triangles. The standard sprite/UI mesh.
func Quad(name string) gltrace.Mesh {
	return gltrace.Mesh{
		Name: name,
		Vertices: []gltrace.Vertex{
			{Pos: geom.Vec3{X: -0.5, Y: -0.5}, U: 0, V: 0},
			{Pos: geom.Vec3{X: 0.5, Y: -0.5}, U: 1, V: 0},
			{Pos: geom.Vec3{X: 0.5, Y: 0.5}, U: 1, V: 1},
			{Pos: geom.Vec3{X: -0.5, Y: 0.5}, U: 0, V: 1},
		},
		Indices: []int{0, 1, 2, 0, 2, 3},
	}
}

// Grid returns an nx x nz grid of quads in the XZ plane spanning
// [-0.5, 0.5]^2, with per-vertex height from heightFn (may be nil for a
// flat grid). The standard terrain/road mesh: (nx*nz*2) triangles.
func Grid(name string, nx, nz int, heightFn func(x, z float64) float64) gltrace.Mesh {
	if nx < 1 || nz < 1 {
		panic(fmt.Sprintf("scene: Grid needs positive dimensions, got %dx%d", nx, nz))
	}
	m := gltrace.Mesh{Name: name}
	for iz := 0; iz <= nz; iz++ {
		for ix := 0; ix <= nx; ix++ {
			x := float64(ix)/float64(nx) - 0.5
			z := float64(iz)/float64(nz) - 0.5
			y := 0.0
			if heightFn != nil {
				y = heightFn(x, z)
			}
			m.Vertices = append(m.Vertices, gltrace.Vertex{
				Pos: geom.Vec3{X: x, Y: y, Z: z},
				U:   float64(ix) / float64(nx),
				V:   float64(iz) / float64(nz),
			})
		}
	}
	stride := nx + 1
	for iz := 0; iz < nz; iz++ {
		for ix := 0; ix < nx; ix++ {
			a := iz*stride + ix
			b := a + 1
			c := a + stride
			d := c + 1
			m.Indices = append(m.Indices, a, b, d, a, d, c)
		}
	}
	return m
}

// Box returns a unit cube centered at the origin: 12 triangles.
func Box(name string) gltrace.Mesh {
	// 8 corners; UVs are reused across faces (footprint is what matters).
	corners := []geom.Vec3{
		{X: -0.5, Y: -0.5, Z: -0.5}, {X: 0.5, Y: -0.5, Z: -0.5},
		{X: 0.5, Y: 0.5, Z: -0.5}, {X: -0.5, Y: 0.5, Z: -0.5},
		{X: -0.5, Y: -0.5, Z: 0.5}, {X: 0.5, Y: -0.5, Z: 0.5},
		{X: 0.5, Y: 0.5, Z: 0.5}, {X: -0.5, Y: 0.5, Z: 0.5},
	}
	m := gltrace.Mesh{Name: name}
	for i, c := range corners {
		m.Vertices = append(m.Vertices, gltrace.Vertex{
			Pos: c,
			U:   float64(i % 2),
			V:   float64((i / 2) % 2),
		})
	}
	m.Indices = []int{
		0, 1, 2, 0, 2, 3, // back
		4, 6, 5, 4, 7, 6, // front
		0, 4, 5, 0, 5, 1, // bottom
		3, 2, 6, 3, 6, 7, // top
		0, 3, 7, 0, 7, 4, // left
		1, 5, 6, 1, 6, 2, // right
	}
	return m
}

// Sphere returns a UV sphere with the given number of rings and segments:
// 2*rings*segments triangles (minus degenerate pole quads collapsed to
// triangles kept as-is for simplicity).
func Sphere(name string, rings, segments int) gltrace.Mesh {
	if rings < 2 || segments < 3 {
		panic(fmt.Sprintf("scene: Sphere needs rings>=2 segments>=3, got %d/%d", rings, segments))
	}
	m := gltrace.Mesh{Name: name}
	for r := 0; r <= rings; r++ {
		phi := math.Pi * float64(r) / float64(rings)
		for s := 0; s <= segments; s++ {
			theta := 2 * math.Pi * float64(s) / float64(segments)
			m.Vertices = append(m.Vertices, gltrace.Vertex{
				Pos: geom.Vec3{
					X: 0.5 * math.Sin(phi) * math.Cos(theta),
					Y: 0.5 * math.Cos(phi),
					Z: 0.5 * math.Sin(phi) * math.Sin(theta),
				},
				U: float64(s) / float64(segments),
				V: float64(r) / float64(rings),
			})
		}
	}
	stride := segments + 1
	for r := 0; r < rings; r++ {
		for s := 0; s < segments; s++ {
			a := r*stride + s
			b := a + 1
			c := a + stride
			d := c + 1
			m.Indices = append(m.Indices, a, b, d, a, d, c)
		}
	}
	return m
}

// RoadStrip returns a long, narrow grid used as a racing-track segment:
// length segments of 2 quads each, slightly curved by curvature.
func RoadStrip(name string, segments int, curvature float64) gltrace.Mesh {
	if segments < 1 {
		panic("scene: RoadStrip needs at least one segment")
	}
	m := gltrace.Mesh{Name: name}
	for i := 0; i <= segments; i++ {
		t := float64(i) / float64(segments)
		bend := curvature * math.Sin(t*math.Pi)
		for side := 0; side <= 2; side++ {
			x := (float64(side)/2 - 0.5) * 0.3
			m.Vertices = append(m.Vertices, gltrace.Vertex{
				Pos: geom.Vec3{X: x + bend, Y: 0, Z: t - 0.5},
				U:   float64(side) / 2,
				V:   t * float64(segments) / 4,
			})
		}
	}
	for i := 0; i < segments; i++ {
		base := i * 3
		for q := 0; q < 2; q++ {
			a := base + q
			b := a + 1
			c := a + 3
			d := c + 1
			m.Indices = append(m.Indices, a, b, d, a, d, c)
		}
	}
	return m
}
