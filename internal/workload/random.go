package workload

import (
	"fmt"

	"repro/internal/xmath/stats"
)

// RandomProfile synthesizes a randomized benchmark profile as a pure
// function of the seed: same seed, same profile, always. The validation
// oracle (internal/check) runs the full methodology over a population
// of these to measure sampled-vs-full error on workloads nobody tuned
// the clustering against — the randomized counterpart of the Table II
// set.
//
// The structural envelope matches the hand-written profiles: a menu
// bookending 2-4 gameplay phases with repeats and event bursts, layer
// counts and animation kinds drawn from the same vocabulary, so the
// traces exercise the same simulator paths at comparable per-frame
// cost.
func RandomProfile(seed uint64) Profile {
	rng := stats.NewRNG(seed)
	p := Profile{
		Alias: fmt.Sprintf("rnd-%x", seed),
		Title: fmt.Sprintf("Randomized workload %#x", seed),
		Genre: "Randomized validation",
		Seed:  seed,
	}
	if rng.Float64() < 0.5 {
		p.Type = Game2D
		p.NumVS = 3 + rng.Intn(4)
		p.NumFS = 3 + rng.Intn(5)
		p.Detail = rng.Range(0.55, 0.85)
	} else {
		p.Type = Game3D
		p.NumVS = 8 + rng.Intn(20)
		p.NumFS = 8 + rng.Intn(24)
		p.Detail = rng.Range(0.7, 1.1)
	}
	p.Frames = 600 + rng.Intn(1000)

	gameplay := 2 + rng.Intn(3)
	p.Phases = append(p.Phases, Phase{Name: "menu", Weight: rng.Range(0.05, 0.12), Layers: menuLayers()})
	weightLeft := 1.0 - 2*p.Phases[0].Weight
	for g := 0; g < gameplay; g++ {
		w := weightLeft / float64(gameplay) * rng.Range(0.7, 1.3)
		p.Phases = append(p.Phases, randomGameplayPhase(rng, p.Type, g, w))
	}
	p.Phases = append(p.Phases, Phase{Name: "results", Weight: p.Phases[0].Weight, Layers: menuLayers()})
	return p
}

func randomGameplayPhase(rng *stats.RNG, t GameType, idx int, weight float64) Phase {
	ph := Phase{
		Name:      fmt.Sprintf("play-%d", idx),
		Weight:    weight,
		Repeat:    1 + rng.Intn(4),
		EventRate: rng.Range(0, 0.05),
	}
	nLayers := 3 + rng.Intn(3)
	for l := 0; l < nLayers; l++ {
		ph.Layers = append(ph.Layers, randomLayer(rng, t, l))
	}
	return ph
}

func randomLayer(rng *stats.RNG, t GameType, idx int) Layer {
	anims := []AnimKind{AnimStatic, AnimSpin, AnimBob, AnimScroll}
	ly := Layer{
		Name:      fmt.Sprintf("layer-%d", idx),
		Material:  -1,
		BaseCount: 2 + rng.Intn(12),
		Spread:    rng.Range(0.5, 6),
		Anim:      anims[rng.Intn(len(anims))],
		Blend:     rng.Float64() < 0.3,
	}
	if rng.Float64() < 0.6 {
		ly.CountAmp = 1 + rng.Intn(6)
		ly.CountFreq = rng.Range(1, 8)
	}
	if t == Game2D {
		ly.Mesh = MeshQuad
		ly.Anim = []AnimKind{AnimStatic, AnimBob, AnimScroll}[rng.Intn(3)]
		ly.SizeMin = rng.Range(0.03, 0.08)
		ly.SizeMax = ly.SizeMin + rng.Range(0.02, 0.25)
		ly.Depth = rng.Range(0.1, 0.9)
		ly.Spread = rng.Range(0.5, 1)
	} else {
		meshes := []MeshKind{MeshQuad, MeshBox, MeshSphere, MeshTerrain, MeshRoad}
		ly.Mesh = meshes[rng.Intn(len(meshes))]
		ly.SizeMin = rng.Range(0.2, 1.5)
		ly.SizeMax = ly.SizeMin + rng.Range(0.1, 2.5)
		if ly.Mesh == MeshTerrain || ly.Mesh == MeshRoad {
			// Large static ground geometry, like the hand-written tracks.
			ly.BaseCount = 1 + rng.Intn(3)
			ly.SizeMin, ly.SizeMax = 5, 8
			ly.Anim = AnimStatic
		}
	}
	return ly
}
