// Package workload synthesizes the benchmark traces of Table II. Since
// the paper's commercial Android games and their captured OpenGL traces
// are unavailable, each benchmark is replaced by a deterministic
// procedural "game" with the same observable structure: the Table II
// frame counts and shader counts, a 2D or 3D rendering style, and a
// multi-phase gameplay timeline (menus, gameplay segments, repeated
// laps/waves, event bursts) that produces the block-structured frame
// similarity the MEGsim clustering exploits (cf. Fig. 5 of the paper).
//
// Every generator is a pure function of (profile, scale, seed): the same
// arguments always produce the identical trace.
package workload

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/xmath/stats"
)

// Scale controls the physical size of generated frames so full-sequence
// cycle-accurate simulation stays tractable. The paper's absolute
// magnitudes (1440x720, hundreds of thousands of triangles) are not the
// reproduction target; the per-frame *structure* is.
type Scale struct {
	// Width, Height is the render target size in pixels.
	Width, Height int
	// FrameDivisor divides the Table II frame counts (1 = full length).
	FrameDivisor int
	// DetailDivisor divides per-frame instance counts (1 = full detail).
	DetailDivisor int
}

// DefaultScale is used by the experiment harness: full Table II frame
// counts at a reduced resolution.
var DefaultScale = Scale{Width: 320, Height: 160, FrameDivisor: 1, DetailDivisor: 1}

// TestScale is a tiny configuration for unit tests.
var TestScale = Scale{Width: 128, Height: 64, FrameDivisor: 20, DetailDivisor: 2}

func (s Scale) validated() Scale {
	if s.Width <= 0 || s.Height <= 0 {
		panic(fmt.Sprintf("workload: invalid scale %dx%d", s.Width, s.Height))
	}
	if s.FrameDivisor < 1 {
		s.FrameDivisor = 1
	}
	if s.DetailDivisor < 1 {
		s.DetailDivisor = 1
	}
	return s
}

// GameType distinguishes the two rendering styles of Table II.
type GameType int

const (
	// Game2D renders layered orthographic sprites.
	Game2D GameType = iota
	// Game3D renders perspective scenes with terrain and models.
	Game3D
)

// String returns "2D" or "3D".
func (g GameType) String() string {
	if g == Game2D {
		return "2D"
	}
	return "3D"
}

// Profile describes one benchmark. The eight Table II profiles are in
// Profiles; custom profiles can be constructed directly (see
// examples/custom_workload).
type Profile struct {
	// Alias is the short benchmark name used throughout the paper
	// (asp, bbr1, ...).
	Alias string
	// Title is the full game name.
	Title string
	// Genre matches the Description column of Table II.
	Genre string
	// Type is 2D or 3D.
	Type GameType
	// Frames is the Table II sequence length.
	Frames int
	// NumVS and NumFS are the Table II shader counts.
	NumVS, NumFS int
	// Seed drives all procedural generation for the benchmark.
	Seed uint64
	// Phases is the gameplay timeline. Phase weights are normalized to
	// the total frame count.
	Phases []Phase
	// Detail scales per-frame instance counts relative to other
	// profiles (3D racers are heavier than 2D platformers).
	Detail float64
}

// Phase is one segment of a benchmark's timeline.
type Phase struct {
	// Name labels the phase ("menu", "lap", "wave"...).
	Name string
	// Weight is the fraction of the sequence the phase occupies,
	// relative to the sum of all phase weights.
	Weight float64
	// Repeat splits the phase into this many similar-but-not-identical
	// occurrences spread over its frame budget (laps of a race, waves
	// of a tower defense). 0 means 1.
	Repeat int
	// Layers are the draw layers active during the phase.
	Layers []Layer
	// EventRate is the per-frame probability of a short "event burst"
	// (explosion, power-up flash) that adds extra draws for a few
	// frames, creating outlier frames.
	EventRate float64
}

// AnimKind selects how a layer's instances move.
type AnimKind int

const (
	// AnimStatic leaves instances fixed for the phase.
	AnimStatic AnimKind = iota
	// AnimSpin rotates instances about Y.
	AnimSpin
	// AnimBob oscillates instances vertically.
	AnimBob
	// AnimScroll translates instances along -X over time (2D scrolling
	// content re-anchored to the camera window).
	AnimScroll
)

// MeshKind selects a layer's mesh from the profile's mesh library.
type MeshKind int

const (
	// MeshQuad is a 2-triangle sprite quad.
	MeshQuad MeshKind = iota
	// MeshBox is a 12-triangle cube.
	MeshBox
	// MeshSphere is a ~96-triangle UV sphere.
	MeshSphere
	// MeshTerrain is a 128-triangle height-mapped grid.
	MeshTerrain
	// MeshRoad is an 80-triangle curved road strip.
	MeshRoad
	numMeshKinds int = iota
)

// Layer is a group of instances drawn with one material during a phase.
type Layer struct {
	// Name labels the layer ("background", "cars", "hud"...).
	Name string
	// Mesh selects the geometry.
	Mesh MeshKind
	// Material indexes the profile's material table; materials bind a
	// (vertex shader, fragment shader, texture) triple. Use -1 to
	// spread instances across all materials round-robin.
	Material int
	// BaseCount is the instance count at nominal intensity.
	BaseCount int
	// CountAmp modulates the count sinusoidally across the phase
	// (traffic density, enemy waves).
	CountAmp int
	// CountFreq is the modulation frequency in cycles per phase.
	CountFreq float64
	// Spread scatters instances in world units (3D) or screen
	// fractions (2D).
	Spread float64
	// SizeMin and SizeMax bound instance scale.
	SizeMin, SizeMax float64
	// Anim selects instance animation.
	Anim AnimKind
	// Depth is the 2D layer depth (smaller = nearer).
	Depth float64
	// Blend marks the layer's draws as alpha-blended (UI, particles,
	// effects): depth-tested but not depth-written.
	Blend bool
}

// Profiles is the Table II benchmark set, keyed by alias. Shader and
// frame counts match the table exactly; everything else (phase
// structure, detail) is the synthetic substitution documented in
// DESIGN.md.
var Profiles = map[string]Profile{
	"asp":  aspProfile(),
	"bbr1": bbrProfile("bbr1", 2500, 73, 62, 0xbb1),
	"bbr2": bbrProfile("bbr2", 4000, 66, 59, 0xbb2),
	"hcr":  hcrProfile(),
	"hwh":  hwhProfile(),
	"jjo":  jjoProfile(),
	"pvz":  pvzProfile(),
	"spd":  spdProfile(),
}

// Aliases returns the benchmark aliases in the paper's table order.
func Aliases() []string {
	return []string{"asp", "bbr1", "bbr2", "hcr", "hwh", "jjo", "pvz", "spd"}
}

// Get returns the named profile or an error listing valid aliases.
func Get(alias string) (Profile, error) {
	p, ok := Profiles[alias]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q (valid: %v)", alias, Aliases())
	}
	return p, nil
}

func racingLayers(detailedCars int) []Layer {
	return []Layer{
		{Name: "terrain", Mesh: MeshTerrain, Material: 0, BaseCount: 2, Spread: 6, SizeMin: 8, SizeMax: 8},
		{Name: "road", Mesh: MeshRoad, Material: 1, BaseCount: 2, Spread: 4, SizeMin: 6, SizeMax: 6},
		{Name: "cars", Mesh: MeshBox, Material: -1, BaseCount: detailedCars, CountAmp: detailedCars / 3, CountFreq: 2, Spread: 4, SizeMin: 0.4, SizeMax: 0.8, Anim: AnimSpin},
		{Name: "scenery", Mesh: MeshSphere, Material: -1, BaseCount: detailedCars + 2, CountAmp: 3, CountFreq: 3, Spread: 8, SizeMin: 0.5, SizeMax: 2.2},
		{Name: "pickups", Mesh: MeshSphere, Material: -1, BaseCount: 4, CountAmp: 2, CountFreq: 5, Spread: 3, SizeMin: 0.2, SizeMax: 0.35, Anim: AnimBob},
		{Name: "hud", Mesh: MeshQuad, Material: -1, BaseCount: 5, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.12, Depth: 0.05, Blend: true},
	}
}

func menuLayers() []Layer {
	return []Layer{
		{Name: "backdrop", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.9},
		{Name: "panels", Mesh: MeshQuad, Material: -1, BaseCount: 8, CountAmp: 2, CountFreq: 1, Spread: 0.7, SizeMin: 0.1, SizeMax: 0.3, Depth: 0.5, Blend: true},
		{Name: "buttons", Mesh: MeshQuad, Material: -1, BaseCount: 6, Spread: 0.6, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.2, Blend: true},
	}
}

func aspProfile() Profile {
	return Profile{
		Alias: "asp", Title: "Asphalt 9: Legends", Genre: "Racing", Type: Game3D,
		Frames: 4000, NumVS: 42, NumFS: 45, Seed: 0xa59, Detail: 1.4,
		Phases: []Phase{
			{Name: "menu", Weight: 0.06, Layers: menuLayers()},
			{Name: "garage", Weight: 0.06, Layers: []Layer{
				{Name: "car", Mesh: MeshSphere, Material: 2, BaseCount: 6, Spread: 1, SizeMin: 1, SizeMax: 1.5, Anim: AnimSpin},
				{Name: "floor", Mesh: MeshTerrain, Material: 3, BaseCount: 1, SizeMin: 6, SizeMax: 6},
				{Name: "ui", Mesh: MeshQuad, Material: -1, BaseCount: 10, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.15, Depth: 0.1, Blend: true},
			}},
			{Name: "race", Weight: 0.68, Repeat: 3, EventRate: 0.02, Layers: racingLayers(14)},
			{Name: "nitro", Weight: 0.12, Repeat: 4, EventRate: 0.05, Layers: append(racingLayers(18),
				Layer{Name: "speedlines", Mesh: MeshQuad, Material: -1, BaseCount: 12, CountAmp: 4, CountFreq: 6, Spread: 0.9, SizeMin: 0.02, SizeMax: 0.3, Depth: 0.15, Blend: true})},
			{Name: "results", Weight: 0.08, Layers: menuLayers()},
		},
	}
}

func bbrProfile(alias string, frames, vs, fs int, seed uint64) Profile {
	return Profile{
		Alias: alias, Title: "Beach Buggy Racing", Genre: "Racing", Type: Game3D,
		Frames: frames, NumVS: vs, NumFS: fs, Seed: seed, Detail: 1.1,
		Phases: []Phase{
			{Name: "menu", Weight: 0.08, Layers: menuLayers()},
			{Name: "beach-lap", Weight: 0.30, Repeat: 2, EventRate: 0.02, Layers: racingLayers(10)},
			{Name: "jungle-lap", Weight: 0.28, Repeat: 2, EventRate: 0.03, Layers: append(racingLayers(10),
				Layer{Name: "foliage", Mesh: MeshSphere, Material: -1, BaseCount: 10, CountAmp: 4, CountFreq: 4, Spread: 6, SizeMin: 0.8, SizeMax: 2.5})},
			{Name: "powerup-duel", Weight: 0.22, Repeat: 3, EventRate: 0.06, Layers: append(racingLayers(12),
				Layer{Name: "projectiles", Mesh: MeshSphere, Material: -1, BaseCount: 6, CountAmp: 5, CountFreq: 8, Spread: 4, SizeMin: 0.15, SizeMax: 0.4, Anim: AnimBob, Blend: true})},
			{Name: "results", Weight: 0.12, Layers: menuLayers()},
		},
	}
}

func hcrProfile() Profile {
	return Profile{
		Alias: "hcr", Title: "Hill Climb Racing", Genre: "Platforms", Type: Game2D,
		Frames: 2000, NumVS: 5, NumFS: 5, Seed: 0xc12, Detail: 0.8,
		Phases: []Phase{
			{Name: "menu", Weight: 0.1, Layers: menuLayers()},
			{Name: "hills", Weight: 0.5, Repeat: 3, EventRate: 0.01, Layers: []Layer{
				{Name: "sky", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "ground", Mesh: MeshQuad, Material: 1, BaseCount: 14, Spread: 1, SizeMin: 0.15, SizeMax: 0.3, Anim: AnimScroll, Depth: 0.6},
				{Name: "vehicle", Mesh: MeshQuad, Material: 2, BaseCount: 3, Spread: 0.1, SizeMin: 0.08, SizeMax: 0.15, Anim: AnimBob, Depth: 0.3},
				{Name: "coins", Mesh: MeshQuad, Material: 3, BaseCount: 6, CountAmp: 4, CountFreq: 6, Spread: 0.9, SizeMin: 0.03, SizeMax: 0.05, Anim: AnimScroll, Depth: 0.4, Blend: true},
				{Name: "hud", Mesh: MeshQuad, Material: 4, BaseCount: 4, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "cave", Weight: 0.3, Repeat: 2, EventRate: 0.02, Layers: []Layer{
				{Name: "rock", Mesh: MeshQuad, Material: 1, BaseCount: 20, Spread: 1, SizeMin: 0.12, SizeMax: 0.35, Anim: AnimScroll, Depth: 0.7},
				{Name: "vehicle", Mesh: MeshQuad, Material: 2, BaseCount: 3, Spread: 0.1, SizeMin: 0.08, SizeMax: 0.15, Anim: AnimBob, Depth: 0.3},
				{Name: "fuel", Mesh: MeshQuad, Material: 3, BaseCount: 2, CountAmp: 2, CountFreq: 3, Spread: 0.8, SizeMin: 0.03, SizeMax: 0.06, Anim: AnimScroll, Depth: 0.4, Blend: true},
				{Name: "hud", Mesh: MeshQuad, Material: 4, BaseCount: 4, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "gameover", Weight: 0.1, Layers: menuLayers()},
		},
	}
}

func hwhProfile() Profile {
	return Profile{
		Alias: "hwh", Title: "Hot Wheels", Genre: "Racing", Type: Game3D,
		Frames: 4000, NumVS: 30, NumFS: 30, Seed: 0x3f1, Detail: 0.9,
		Phases: []Phase{
			{Name: "menu", Weight: 0.08, Layers: menuLayers()},
			{Name: "track", Weight: 0.55, Repeat: 4, EventRate: 0.015, Layers: racingLayers(8)},
			{Name: "loop-stunt", Weight: 0.25, Repeat: 5, EventRate: 0.04, Layers: append(racingLayers(8),
				Layer{Name: "loop", Mesh: MeshRoad, Material: -1, BaseCount: 4, Spread: 3, SizeMin: 3, SizeMax: 5, Anim: AnimSpin})},
			{Name: "results", Weight: 0.12, Layers: menuLayers()},
		},
	}
}

func jjoProfile() Profile {
	return Profile{
		Alias: "jjo", Title: "Jetpack Joyride", Genre: "Side-scrolling endless runner", Type: Game2D,
		Frames: 5000, NumVS: 4, NumFS: 5, Seed: 0x77a, Detail: 0.7,
		Phases: []Phase{
			{Name: "menu", Weight: 0.06, Layers: menuLayers()},
			{Name: "lab-run", Weight: 0.48, Repeat: 4, EventRate: 0.02, Layers: []Layer{
				{Name: "background", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "walls", Mesh: MeshQuad, Material: 1, BaseCount: 12, Spread: 1, SizeMin: 0.1, SizeMax: 0.4, Anim: AnimScroll, Depth: 0.7},
				{Name: "player", Mesh: MeshQuad, Material: 2, BaseCount: 2, Spread: 0.05, SizeMin: 0.06, SizeMax: 0.1, Anim: AnimBob, Depth: 0.3},
				{Name: "coins", Mesh: MeshQuad, Material: 3, BaseCount: 8, CountAmp: 6, CountFreq: 8, Spread: 0.9, SizeMin: 0.02, SizeMax: 0.04, Anim: AnimScroll, Depth: 0.4, Blend: true},
				{Name: "zappers", Mesh: MeshQuad, Material: 1, BaseCount: 3, CountAmp: 2, CountFreq: 5, Spread: 0.9, SizeMin: 0.04, SizeMax: 0.2, Anim: AnimScroll, Depth: 0.45},
			}},
			{Name: "vehicle-run", Weight: 0.3, Repeat: 3, EventRate: 0.04, Layers: []Layer{
				{Name: "background", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "walls", Mesh: MeshQuad, Material: 1, BaseCount: 16, Spread: 1, SizeMin: 0.1, SizeMax: 0.4, Anim: AnimScroll, Depth: 0.7},
				{Name: "mech", Mesh: MeshQuad, Material: 4, BaseCount: 5, Spread: 0.1, SizeMin: 0.1, SizeMax: 0.2, Anim: AnimBob, Depth: 0.3},
				{Name: "missiles", Mesh: MeshQuad, Material: 1, BaseCount: 4, CountAmp: 3, CountFreq: 10, Spread: 0.9, SizeMin: 0.02, SizeMax: 0.06, Anim: AnimScroll, Depth: 0.35, Blend: true},
			}},
			{Name: "gameover", Weight: 0.16, Layers: menuLayers()},
		},
	}
}

func pvzProfile() Profile {
	return Profile{
		Alias: "pvz", Title: "Plants vs Zombies", Genre: "Tower defense", Type: Game2D,
		Frames: 5000, NumVS: 4, NumFS: 5, Seed: 0x9e2, Detail: 0.75,
		Phases: []Phase{
			{Name: "menu", Weight: 0.08, Layers: menuLayers()},
			{Name: "planting", Weight: 0.24, Repeat: 3, EventRate: 0.005, Layers: []Layer{
				{Name: "lawn", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "plants", Mesh: MeshQuad, Material: 1, BaseCount: 10, CountAmp: 6, CountFreq: 1, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.09, Anim: AnimBob, Depth: 0.5},
				{Name: "sun", Mesh: MeshQuad, Material: 2, BaseCount: 3, CountAmp: 2, CountFreq: 6, Spread: 0.9, SizeMin: 0.03, SizeMax: 0.05, Anim: AnimBob, Depth: 0.3, Blend: true},
				{Name: "hud", Mesh: MeshQuad, Material: 3, BaseCount: 6, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "wave", Weight: 0.44, Repeat: 4, EventRate: 0.03, Layers: []Layer{
				{Name: "lawn", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "plants", Mesh: MeshQuad, Material: 1, BaseCount: 18, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.09, Anim: AnimBob, Depth: 0.5},
				{Name: "zombies", Mesh: MeshQuad, Material: 4, BaseCount: 8, CountAmp: 6, CountFreq: 2, Spread: 0.8, SizeMin: 0.06, SizeMax: 0.1, Anim: AnimScroll, Depth: 0.45},
				{Name: "projectiles", Mesh: MeshQuad, Material: 2, BaseCount: 6, CountAmp: 5, CountFreq: 10, Spread: 0.8, SizeMin: 0.015, SizeMax: 0.03, Anim: AnimScroll, Depth: 0.4, Blend: true},
				{Name: "hud", Mesh: MeshQuad, Material: 3, BaseCount: 6, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "final-wave", Weight: 0.16, Repeat: 2, EventRate: 0.08, Layers: []Layer{
				{Name: "lawn", Mesh: MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "plants", Mesh: MeshQuad, Material: 1, BaseCount: 20, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.09, Anim: AnimBob, Depth: 0.5},
				{Name: "horde", Mesh: MeshQuad, Material: 4, BaseCount: 20, CountAmp: 8, CountFreq: 3, Spread: 0.8, SizeMin: 0.06, SizeMax: 0.1, Anim: AnimScroll, Depth: 0.45},
				{Name: "explosions", Mesh: MeshQuad, Material: 2, BaseCount: 4, CountAmp: 4, CountFreq: 12, Spread: 0.8, SizeMin: 0.05, SizeMax: 0.2, Depth: 0.35, Blend: true},
			}},
			{Name: "victory", Weight: 0.08, Layers: menuLayers()},
		},
	}
}

func spdProfile() Profile {
	return Profile{
		Alias: "spd", Title: "Spider-Man Unlimited", Genre: "Side-scrolling endless runner", Type: Game3D,
		Frames: 5000, NumVS: 16, NumFS: 26, Seed: 0x5bd, Detail: 1.0,
		Phases: []Phase{
			{Name: "menu", Weight: 0.06, Layers: menuLayers()},
			{Name: "street-run", Weight: 0.4, Repeat: 3, EventRate: 0.02, Layers: []Layer{
				{Name: "city", Mesh: MeshBox, Material: -1, BaseCount: 16, CountAmp: 4, CountFreq: 2, Spread: 8, SizeMin: 1.5, SizeMax: 4},
				{Name: "street", Mesh: MeshRoad, Material: 0, BaseCount: 3, Spread: 2, SizeMin: 5, SizeMax: 5},
				{Name: "hero", Mesh: MeshSphere, Material: 1, BaseCount: 2, Spread: 0.3, SizeMin: 0.3, SizeMax: 0.5, Anim: AnimBob},
				{Name: "pickups", Mesh: MeshSphere, Material: -1, BaseCount: 5, CountAmp: 4, CountFreq: 6, Spread: 3, SizeMin: 0.15, SizeMax: 0.3, Anim: AnimBob},
				{Name: "hud", Mesh: MeshQuad, Material: -1, BaseCount: 4, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "rooftop-swing", Weight: 0.34, Repeat: 4, EventRate: 0.03, Layers: []Layer{
				{Name: "towers", Mesh: MeshBox, Material: -1, BaseCount: 22, CountAmp: 6, CountFreq: 3, Spread: 10, SizeMin: 2, SizeMax: 6},
				{Name: "hero", Mesh: MeshSphere, Material: 1, BaseCount: 2, Spread: 0.3, SizeMin: 0.3, SizeMax: 0.5, Anim: AnimBob},
				{Name: "webs", Mesh: MeshQuad, Material: -1, BaseCount: 6, CountAmp: 3, CountFreq: 8, Spread: 4, SizeMin: 0.05, SizeMax: 0.4, Blend: true},
				{Name: "hud", Mesh: MeshQuad, Material: -1, BaseCount: 4, Spread: 0.7, SizeMin: 0.04, SizeMax: 0.1, Depth: 0.1, Blend: true},
			}},
			{Name: "boss", Weight: 0.14, Repeat: 2, EventRate: 0.06, Layers: []Layer{
				{Name: "arena", Mesh: MeshTerrain, Material: 0, BaseCount: 2, Spread: 2, SizeMin: 8, SizeMax: 8},
				{Name: "boss", Mesh: MeshSphere, Material: 2, BaseCount: 4, Spread: 1, SizeMin: 0.8, SizeMax: 1.5, Anim: AnimSpin},
				{Name: "hero", Mesh: MeshSphere, Material: 1, BaseCount: 2, Spread: 0.3, SizeMin: 0.3, SizeMax: 0.5, Anim: AnimBob},
				{Name: "effects", Mesh: MeshQuad, Material: -1, BaseCount: 8, CountAmp: 6, CountFreq: 10, Spread: 3, SizeMin: 0.05, SizeMax: 0.5, Blend: true},
			}},
			{Name: "results", Weight: 0.06, Layers: menuLayers()},
		},
	}
}

// frameSeed derives the deterministic per-frame RNG seed so every frame's
// content is a pure function of (profile seed, frame index).
func frameSeed(seed uint64, frame int) uint64 {
	x := seed ^ (uint64(frame)+1)*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// material binds a shader pair and texture.
type material struct {
	vs, fs, tex int
}

// Generate builds the complete trace for the profile at the given scale.
// The result always validates.
func Generate(p Profile, sc Scale) (*gltrace.Trace, error) {
	sc = sc.validated()
	if p.Frames <= 0 || p.NumVS <= 0 || p.NumFS <= 0 {
		return nil, fmt.Errorf("workload %s: profile needs positive frames and shader counts", p.Alias)
	}
	if len(p.Phases) == 0 {
		return nil, fmt.Errorf("workload %s: profile has no phases", p.Alias)
	}
	rng := stats.NewRNG(p.Seed)
	tr := &gltrace.Trace{
		Name:     p.Alias,
		Viewport: geom.Viewport{Width: sc.Width, Height: sc.Height},
	}

	// Shader programs: mix of simple and complex according to game type.
	gen := shader.NewGenerator(rng.Split())
	for i := 0; i < p.NumVS; i++ {
		c := shader.SimpleVertex
		if p.Type == Game3D && i%3 != 0 {
			c = shader.ComplexVertex
		}
		tr.VertexShaders = append(tr.VertexShaders, gen.Vertex(c))
	}
	for i := 0; i < p.NumFS; i++ {
		c := shader.SimpleFragment
		if p.Type == Game3D && i%2 == 0 {
			c = shader.ComplexFragment
		}
		tr.FragmentShaders = append(tr.FragmentShaders, gen.Fragment(c))
	}

	// Mesh library, indexed by MeshKind.
	tr.Meshes = []gltrace.Mesh{
		MeshQuad:    scene.Quad("quad"),
		MeshBox:     scene.Box("box"),
		MeshSphere:  scene.Sphere("sphere", 6, 8),
		MeshTerrain: terrainMesh(rng.Split()),
		MeshRoad:    scene.RoadStrip("road", 20, 0.25),
	}

	// Textures: one per material slot, varied sizes.
	numMaterials := p.NumVS
	if p.NumFS > numMaterials {
		numMaterials = p.NumFS
	}
	texSizes := []int{64, 128, 256}
	for i := 0; i < numMaterials; i++ {
		s := texSizes[i%len(texSizes)]
		tr.Textures = append(tr.Textures, gltrace.Texture{
			Name: fmt.Sprintf("tex_%d", i), Width: s, Height: s, BytesPerTexel: 4,
		})
	}
	materials := make([]material, numMaterials)
	for i := range materials {
		materials[i] = material{vs: i % p.NumVS, fs: i % p.NumFS, tex: i}
	}

	frames := p.Frames / sc.FrameDivisor
	if frames < len(p.Phases) {
		frames = len(p.Phases)
	}
	schedule := buildSchedule(p, frames)
	cam := cameraFor(p, sc)

	b := &builder{
		profile:   p,
		scale:     sc,
		trace:     tr,
		materials: materials,
		camera:    cam,
	}
	for f := 0; f < frames; f++ {
		b.emitFrame(f, schedule[f])
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid trace: %w", p.Alias, err)
	}
	return tr, nil
}

// MustGenerate is Generate panicking on error; the built-in profiles
// always generate successfully.
func MustGenerate(p Profile, sc Scale) *gltrace.Trace {
	tr, err := Generate(p, sc)
	if err != nil {
		panic(err)
	}
	return tr
}

func terrainMesh(rng *stats.RNG) gltrace.Mesh {
	a := rng.Range(1, 3)
	b := rng.Range(2, 5)
	return scene.Grid("terrain", 8, 8, func(x, z float64) float64 {
		return 0.08*math.Sin(a*x*6) + 0.06*math.Cos(b*z*5)
	})
}

func cameraFor(p Profile, sc Scale) scene.Camera {
	aspect := float64(sc.Width) / float64(sc.Height)
	switch p.Type {
	case Game3D:
		return scene.ChaseCamera{
			Path:   scene.CircuitPath(12, 9, 25),
			Height: 2.2, Back: 5,
			FovY: math.Pi / 3, Aspect: aspect,
		}
	default:
		return scene.SideScroller{Width: 100 * aspect, Height: 100, Speed: 18}
	}
}

// slot describes which phase occurrence a frame belongs to.
type slot struct {
	phase      int     // index into p.Phases
	occurrence int     // repeat number within the phase
	t          float64 // position within the occurrence, [0, 1)
}

// buildSchedule assigns every frame to a phase occurrence according to
// the phase weights and repeats.
func buildSchedule(p Profile, frames int) []slot {
	totalW := 0.0
	for _, ph := range p.Phases {
		totalW += ph.Weight
	}
	if totalW <= 0 {
		totalW = 1
	}
	sched := make([]slot, 0, frames)
	assigned := 0
	for pi, ph := range p.Phases {
		n := int(math.Round(ph.Weight / totalW * float64(frames)))
		if pi == len(p.Phases)-1 {
			n = frames - assigned // absorb rounding residue
		}
		if n <= 0 {
			continue
		}
		rep := ph.Repeat
		if rep < 1 {
			rep = 1
		}
		per := n / rep
		if per == 0 {
			per, rep = n, 1
		}
		for i := 0; i < n; i++ {
			occ := i / per
			if occ >= rep {
				occ = rep - 1
			}
			within := i - occ*per
			length := per
			if occ == rep-1 {
				length = n - (rep-1)*per
			}
			sched = append(sched, slot{phase: pi, occurrence: occ, t: float64(within) / float64(length)})
		}
		assigned += n
	}
	// Guard against rounding shortfalls.
	for len(sched) < frames {
		sched = append(sched, sched[len(sched)-1])
	}
	return sched[:frames]
}

// builder accumulates frames into the trace.
type builder struct {
	profile   Profile
	scale     Scale
	trace     *gltrace.Trace
	materials []material
	camera    scene.Camera
	// event tracks a live event burst: frames remaining and its layer.
	eventFrames int
	eventLayer  Layer
}

func (b *builder) emitFrame(f int, s slot) {
	p := b.profile
	ph := p.Phases[s.phase]
	rng := stats.NewRNG(frameSeed(p.Seed, f))
	t := float64(f) / 60.0
	vp := b.camera.ViewProjection(t)

	frame := gltrace.Frame{}
	frame.Commands = append(frame.Commands, gltrace.Command{Op: gltrace.CmdClear})

	// Occurrence-specific variation: each repeat of a phase shifts
	// which materials its layers use, so laps are similar to each
	// other but not identical.
	matShift := s.occurrence * 3

	for li, layer := range ph.Layers {
		b.emitLayer(&frame, layer, li, s, matShift, t, vp, rng)
	}

	// Event bursts add a short-lived extra layer with rare materials,
	// creating outlier frames that should land in small clusters.
	if b.eventFrames > 0 {
		b.eventFrames--
		b.emitLayer(&frame, b.eventLayer, 99, s, matShift, t, vp, rng)
	} else if ph.EventRate > 0 && rng.Float64() < ph.EventRate {
		b.eventFrames = 3 + rng.Intn(6)
		b.eventLayer = Layer{
			Name: "event", Mesh: MeshQuad, Material: -1,
			BaseCount: 10 + rng.Intn(10), Spread: 0.9,
			SizeMin: 0.05, SizeMax: 0.4, Depth: 0.2, Blend: true,
		}
	}

	b.trace.Frames = append(b.trace.Frames, frame)
}

func (b *builder) emitLayer(frame *gltrace.Frame, layer Layer, li int, s slot, matShift int, t float64, vp geom.Mat4, rng *stats.RNG) {
	p := b.profile
	count := layer.BaseCount
	if layer.CountAmp > 0 {
		count += int(float64(layer.CountAmp) * math.Sin(2*math.Pi*layer.CountFreq*s.t+float64(li)))
	}
	count = int(float64(count) * p.Detail / float64(b.scale.DetailDivisor))
	if count <= 0 {
		return
	}
	for i := 0; i < count; i++ {
		mi := layer.Material
		if mi < 0 {
			mi = (li*7 + i + matShift) % len(b.materials)
		} else {
			mi = (mi + matShift) % len(b.materials)
		}
		m := b.materials[mi]
		frame.Commands = append(frame.Commands,
			gltrace.Command{Op: gltrace.CmdBindProgram, VS: m.vs, FS: m.fs},
			gltrace.Command{Op: gltrace.CmdBindTexture, Unit: 0, Texture: m.tex},
		)
		model := b.instanceModel(layer, li, i, s, t)
		frame.Commands = append(frame.Commands, gltrace.Command{
			Op:        gltrace.CmdDraw,
			Mesh:      int(layer.Mesh),
			MVP:       vp.Mul(model),
			DepthBias: layer.Depth,
			Blend:     layer.Blend,
		})
	}
}

// instanceModel computes the deterministic placement of instance i of a
// layer. Placement is stable across frames of the same occurrence
// (scatter seeded by layer+instance+occurrence, not by frame), while the
// animation term advances with time — consecutive frames look alike,
// distinct occurrences differ.
func (b *builder) instanceModel(layer Layer, li, i int, s slot, t float64) geom.Mat4 {
	place := stats.NewRNG(frameSeed(b.profile.Seed^0xfeed, li*1000+i+s.occurrence*100000))
	size := place.Range(layer.SizeMin, layer.SizeMax)
	var pos geom.Vec3
	if b.profile.Type == Game2D {
		// 2D: place within the camera window in world units; the
		// side-scrolling camera window is 100*aspect x 100.
		aspect := float64(b.scale.Width) / float64(b.scale.Height)
		w, h := 100*aspect, 100.0
		x := place.Range(0, w) * (0.5 + layer.Spread/2)
		y := place.Range(0.05*h, 0.95*h)
		if layer.Anim == AnimScroll {
			// Scrolled content is re-anchored to the moving window.
			cam, ok := b.camera.(scene.SideScroller)
			if ok {
				span := w * (1 + layer.Spread)
				x = cam.Speed*t + math.Mod(x+cam.Speed*t*0.2, span)
				x = math.Mod(x, cam.Speed*t+w+span)
			}
		} else if cam, ok := b.camera.(scene.SideScroller); ok {
			x += cam.Speed * t // static HUD/backdrop rides with the camera
		}
		pos = geom.Vec3{X: x, Y: y, Z: -layer.Depth * 5}
		size *= h
	} else {
		// 3D: scatter around the camera path position.
		center := scene.CircuitPath(12, 9, 25)(t + 0.2)
		pos = center.Add(geom.Vec3{
			X: place.Norm(0, layer.Spread),
			Y: place.Range(0, layer.Spread*0.2),
			Z: place.Norm(0, layer.Spread),
		})
		if layer.Depth > 0 {
			// 3D HUD elements float directly in front of the camera.
			pos = scene.CircuitPath(12, 9, 25)(t + 0.05).Add(geom.Vec3{
				X: place.Range(-1, 1), Y: place.Range(0.5, 1.8), Z: 0,
			})
		}
	}
	inst := scene.Instance{Position: pos, Scale: geom.Vec3{X: size, Y: size, Z: size}}
	switch layer.Anim {
	case AnimSpin:
		inst.YawSpeed = 0.5 + float64(i%5)*0.3
	case AnimBob:
		inst.BobAmp = size * 0.2
		inst.BobFreq = 0.5 + float64(i%3)*0.4
	}
	return inst.Model(t)
}
