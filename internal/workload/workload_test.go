package workload

import (
	"testing"

	"repro/internal/gltrace"
)

func TestProfilesMatchTableII(t *testing.T) {
	// Frame and shader counts must match Table II of the paper exactly.
	want := []struct {
		alias        string
		typ          GameType
		frames       int
		numVS, numFS int
	}{
		{"asp", Game3D, 4000, 42, 45},
		{"bbr1", Game3D, 2500, 73, 62},
		{"bbr2", Game3D, 4000, 66, 59},
		{"hcr", Game2D, 2000, 5, 5},
		{"hwh", Game3D, 4000, 30, 30},
		{"jjo", Game2D, 5000, 4, 5},
		{"pvz", Game2D, 5000, 4, 5},
		{"spd", Game3D, 5000, 16, 26},
	}
	for _, w := range want {
		p, err := Get(w.alias)
		if err != nil {
			t.Fatalf("%s: %v", w.alias, err)
		}
		if p.Type != w.typ || p.Frames != w.frames || p.NumVS != w.numVS || p.NumFS != w.numFS {
			t.Errorf("%s: got (%v, %d frames, %d VS, %d FS), want (%v, %d, %d, %d)",
				w.alias, p.Type, p.Frames, p.NumVS, p.NumFS, w.typ, w.frames, w.numVS, w.numFS)
		}
	}
}

func TestAliasesCoverProfiles(t *testing.T) {
	if len(Aliases()) != len(Profiles) {
		t.Fatalf("Aliases() has %d entries, Profiles has %d", len(Aliases()), len(Profiles))
	}
	for _, a := range Aliases() {
		if _, ok := Profiles[a]; !ok {
			t.Errorf("alias %s missing from Profiles", a)
		}
	}
}

func TestGetUnknownAlias(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get accepted unknown alias")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	p := Profiles["hcr"]
	a := MustGenerate(p, TestScale)
	b := MustGenerate(p, TestScale)
	if a.NumFrames() != b.NumFrames() {
		t.Fatalf("frame counts differ: %d vs %d", a.NumFrames(), b.NumFrames())
	}
	for i := range a.Frames {
		ca, cb := a.Frames[i].Commands, b.Frames[i].Commands
		if len(ca) != len(cb) {
			t.Fatalf("frame %d command counts differ", i)
		}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("frame %d command %d differs", i, j)
			}
		}
	}
}

func TestGenerateValidatesAllBenchmarks(t *testing.T) {
	for _, alias := range Aliases() {
		p := Profiles[alias]
		tr := MustGenerate(p, TestScale)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", alias, err)
		}
		if tr.Name != alias {
			t.Errorf("%s: trace named %q", alias, tr.Name)
		}
		wantFrames := p.Frames / TestScale.FrameDivisor
		if tr.NumFrames() != wantFrames {
			t.Errorf("%s: %d frames, want %d", alias, tr.NumFrames(), wantFrames)
		}
		if len(tr.VertexShaders) != p.NumVS || len(tr.FragmentShaders) != p.NumFS {
			t.Errorf("%s: shader counts %d/%d, want %d/%d",
				alias, len(tr.VertexShaders), len(tr.FragmentShaders), p.NumVS, p.NumFS)
		}
	}
}

func TestEveryFrameDrawsSomething(t *testing.T) {
	tr := MustGenerate(Profiles["jjo"], TestScale)
	for i := range tr.Frames {
		if tr.Frames[i].DrawCount() == 0 {
			t.Fatalf("frame %d draws nothing", i)
		}
	}
}

func TestFramesVaryAcrossPhases(t *testing.T) {
	// The phase structure must produce measurably different draw counts
	// somewhere in the sequence — otherwise clustering is meaningless.
	tr := MustGenerate(Profiles["bbr1"], TestScale)
	minD, maxD := 1<<30, 0
	for i := range tr.Frames {
		d := tr.Frames[i].DrawCount()
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < minD*2 {
		t.Fatalf("draw counts too uniform: min=%d max=%d", minD, maxD)
	}
}

func TestConsecutiveGameplayFramesSimilar(t *testing.T) {
	// Within a phase, adjacent frames should have nearly identical
	// command mixes (smooth animation, not noise).
	tr := MustGenerate(Profiles["pvz"], TestScale)
	mid := tr.NumFrames() / 2
	a, b := tr.Frames[mid].DrawCount(), tr.Frames[mid+1].DrawCount()
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > a/2+5 {
		t.Fatalf("adjacent frames wildly different: %d vs %d draws", a, b)
	}
}

func TestAllShadersUsedSomewhere(t *testing.T) {
	// Every Table II shader should be exercised by the sequence;
	// occurrence-shifted material selection must reach all of them.
	for _, alias := range []string{"asp", "hcr"} {
		tr := MustGenerate(Profiles[alias], TestScale)
		vsUsed := make([]bool, len(tr.VertexShaders))
		fsUsed := make([]bool, len(tr.FragmentShaders))
		for fi := range tr.Frames {
			for _, c := range tr.Frames[fi].Commands {
				if c.Op == gltrace.CmdBindProgram {
					vsUsed[c.VS] = true
					fsUsed[c.FS] = true
				}
			}
		}
		vsCount, fsCount := 0, 0
		for _, u := range vsUsed {
			if u {
				vsCount++
			}
		}
		for _, u := range fsUsed {
			if u {
				fsCount++
			}
		}
		if vsCount < len(vsUsed)*3/4 || fsCount < len(fsUsed)*3/4 {
			t.Errorf("%s: only %d/%d VS and %d/%d FS used",
				alias, vsCount, len(vsUsed), fsCount, len(fsUsed))
		}
	}
}

func TestScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid scale did not panic")
		}
	}()
	MustGenerate(Profiles["hcr"], Scale{Width: 0, Height: 10})
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	bad := Profile{Alias: "bad", Frames: 0, NumVS: 1, NumFS: 1}
	if _, err := Generate(bad, TestScale); err == nil {
		t.Fatal("accepted profile with zero frames")
	}
	bad = Profile{Alias: "bad", Frames: 10, NumVS: 1, NumFS: 1}
	if _, err := Generate(bad, TestScale); err == nil {
		t.Fatal("accepted profile with no phases")
	}
}

func TestFrameDivisorShortensSequence(t *testing.T) {
	p := Profiles["hwh"]
	small := MustGenerate(p, Scale{Width: 128, Height: 64, FrameDivisor: 100, DetailDivisor: 2})
	if small.NumFrames() != p.Frames/100 {
		t.Fatalf("frames = %d, want %d", small.NumFrames(), p.Frames/100)
	}
}

func TestBuildScheduleCoversAllFrames(t *testing.T) {
	p := Profiles["asp"]
	sched := buildSchedule(p, 997) // awkward length exercises rounding
	if len(sched) != 997 {
		t.Fatalf("schedule length %d, want 997", len(sched))
	}
	seen := map[int]bool{}
	for _, s := range sched {
		if s.phase < 0 || s.phase >= len(p.Phases) {
			t.Fatalf("bad phase index %d", s.phase)
		}
		if s.t < 0 || s.t >= 1.0001 {
			t.Fatalf("bad within-phase position %v", s.t)
		}
		seen[s.phase] = true
	}
	if len(seen) != len(p.Phases) {
		t.Fatalf("schedule covers %d/%d phases", len(seen), len(p.Phases))
	}
}

func TestGameTypeString(t *testing.T) {
	if Game2D.String() != "2D" || Game3D.String() != "3D" {
		t.Fatal("GameType.String wrong")
	}
}

func TestFrameSeedUniqueness(t *testing.T) {
	seen := map[uint64]bool{}
	for f := 0; f < 10000; f++ {
		s := frameSeed(0xabc, f)
		if seen[s] {
			t.Fatalf("frame seed collision at frame %d", f)
		}
		seen[s] = true
	}
}

func TestBlendedLayersPresent(t *testing.T) {
	// Every benchmark should contain both opaque and blended draws —
	// blended UI/particles are part of the workload model.
	for _, alias := range Aliases() {
		tr := MustGenerate(Profiles[alias], TestScale)
		opaque, blended := 0, 0
		for fi := range tr.Frames {
			for _, c := range tr.Frames[fi].Commands {
				if c.Op != gltrace.CmdDraw {
					continue
				}
				if c.Blend {
					blended++
				} else {
					opaque++
				}
			}
		}
		if opaque == 0 || blended == 0 {
			t.Errorf("%s: opaque=%d blended=%d — both kinds expected", alias, opaque, blended)
		}
	}
}
