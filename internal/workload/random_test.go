package workload

import (
	"reflect"
	"testing"
)

// randomTestScale keeps randomized-profile generation cheap: the
// determinism properties under test are scale-independent.
var randomTestScale = Scale{Width: 96, Height: 48, FrameDivisor: 40, DetailDivisor: 2}

// TestRandomProfileDeterministic: RandomProfile is a pure function of
// its seed — the property the differential oracle's reproducibility
// (and its CI gate) rests on.
func TestRandomProfileDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 3, 0xDEADBEEF, ^uint64(0)} {
		a, b := RandomProfile(seed), RandomProfile(seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %#x: profiles differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestRandomProfileSeedSensitivity(t *testing.T) {
	// Nearby seeds must produce different profiles (splitmix64 mixing);
	// check a window of consecutive seeds pairwise.
	profiles := make([]Profile, 8)
	for i := range profiles {
		profiles[i] = RandomProfile(uint64(i))
	}
	distinct := 0
	for i := 1; i < len(profiles); i++ {
		if !reflect.DeepEqual(profiles[0], profiles[i]) {
			distinct++
		}
	}
	if distinct < len(profiles)-2 {
		t.Errorf("only %d of %d consecutive seeds produced distinct profiles", distinct, len(profiles)-1)
	}
}

// TestRandomProfileGeneratesValidTraces: every randomized profile must
// pass Generate's validation and produce a deterministic trace — the
// oracle feeds these straight into the simulator.
func TestRandomProfileGeneratesValidTraces(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := RandomProfile(seed)
		if p.Frames <= 0 || p.NumVS <= 0 || p.NumFS <= 0 {
			t.Fatalf("seed %d: degenerate profile %+v", seed, p)
		}
		tr1, err := Generate(p, randomTestScale)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		if tr1.NumFrames() == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		tr2, err := Generate(p, randomTestScale)
		if err != nil {
			t.Fatalf("seed %d: second Generate: %v", seed, err)
		}
		if !reflect.DeepEqual(tr1, tr2) {
			t.Errorf("seed %d: Generate is not deterministic", seed)
		}
	}
}

// TestRandomProfileCoversBothGameTypes: the 2D/3D split must actually
// exercise both branches over a modest seed range, so oracle seeds span
// both workload families.
func TestRandomProfileCoversBothGameTypes(t *testing.T) {
	var saw2D, saw3D bool
	for seed := uint64(0); seed < 32; seed++ {
		switch RandomProfile(seed).Type {
		case Game2D:
			saw2D = true
		case Game3D:
			saw3D = true
		default:
			t.Fatalf("seed %d: unknown game type", seed)
		}
	}
	if !saw2D || !saw3D {
		t.Errorf("32 seeds covered 2D=%v 3D=%v; want both", saw2D, saw3D)
	}
}
