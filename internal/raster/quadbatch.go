package raster

import (
	"math"
	"sync"

	"repro/internal/geom"
)

// QuadBatch is a struct-of-arrays buffer of rasterized 2x2 quads. The
// timing simulator's fragment loop iterates these flat slices instead of
// chasing per-quad structs through a callback, and the backing arrays
// are reused across triangles and tiles, so the steady-state raster hot
// path performs no allocations.
//
// Quad i occupies X[i], Y[i], Mask[i], U[i], V[i] and the four samples
// Depth[4i:4i+4] (sample order (0,0), (1,0), (0,1), (1,1), matching
// Quad.Depth).
type QuadBatch struct {
	X, Y  []int32
	Mask  []uint8
	Depth []float64 // 4 entries per quad
	U, V  []float64
}

// Len returns the number of quads in the batch.
func (b *QuadBatch) Len() int { return len(b.Mask) }

// Reset empties the batch, keeping the backing arrays for reuse.
func (b *QuadBatch) Reset() {
	b.X = b.X[:0]
	b.Y = b.Y[:0]
	b.Mask = b.Mask[:0]
	b.Depth = b.Depth[:0]
	b.U = b.U[:0]
	b.V = b.V[:0]
}

// Quad materializes quad i as an AoS Quad (callback wrappers, tests).
func (b *QuadBatch) Quad(i int) Quad {
	q := Quad{
		X:    int(b.X[i]),
		Y:    int(b.Y[i]),
		Mask: b.Mask[i],
		U:    b.U[i],
		V:    b.V[i],
	}
	copy(q.Depth[:], b.Depth[i*4:i*4+4])
	return q
}

// AppendQuads rasterizes tri's 2x2 quads intersected with clip (in
// pixels, max-exclusive), appending one entry per quad with at least one
// covered sample. Quads are emitted row-major, the scan order of a
// hardware rasterizer.
//
// This is the batched form of RasterizeQuads and is bit-identical to it:
// every floating-point result is produced by the same expression tree in
// the same order. Loop-invariant subexpressions (the edge coefficients,
// the per-row (xC-xB)*(py-yC) terms) are hoisted, which IEEE arithmetic
// guarantees is value-preserving; no operation is reassociated and no
// incremental edge stepping is used, because either would change
// coverage decisions on boundary samples.
func (b *QuadBatch) AppendQuads(tri *ScreenTriangle, clip geom.AABB2) {
	bb := tri.Tri.Bounds().Intersect(clip)
	if bb.Empty() {
		return
	}
	x0 := int(math.Floor(bb.Min.X)) &^ 1
	y0 := int(math.Floor(bb.Min.Y)) &^ 1
	x1 := int(math.Ceil(bb.Max.X))
	y1 := int(math.Ceil(bb.Max.Y))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 <= x0 || y1 <= y0 {
		return
	}

	t := &tri.Tri
	xA, yA := t.V[0].X, t.V[0].Y
	xB, yB := t.V[1].X, t.V[1].Y
	xC, yC := t.V[2].X, t.V[2].Y
	den := (yB-yC)*(xA-xC) + (xC-xB)*(yA-yC)
	if math.Abs(den) < 1e-12 {
		return
	}
	invDen := 1 / den

	// Edge coefficients, identical subtractions to the per-sample form.
	e0x := yB - yC // l0's px coefficient
	e0y := xC - xB // l0's py coefficient
	e1x := yC - yA // l1's px coefficient
	e1y := xA - xC // l1's py coefficient
	z0, z1, z2 := t.V[0].Z, t.V[1].Z, t.V[2].Z
	u0, u1, u2 := tri.UV[0].X, tri.UV[1].X, tri.UV[2].X
	v0, v1, v2 := tri.UV[0].Y, tri.UV[1].Y, tri.UV[2].Y

	minX, minY := bb.Min.X, bb.Min.Y
	maxX, maxY := bb.Max.X, bb.Max.Y

	// Conservative reject margins: a sample center is at most
	// r = 0.5 + sampleBias away from the quad center in each axis, so a
	// barycentric coordinate can differ from its quad-center value by at
	// most (|ex| + |ey|) * r * |invDen| in real arithmetic. The factor 2
	// swamps floating-point rounding in both evaluations (relative error
	// ~1e-12 of the margin at plausible screen sizes), so a quad whose
	// center coordinate is below -margin provably fails coverage at all
	// four samples and can be skipped without evaluating them. Quads that
	// pass the test still run the full per-sample evaluation, so coverage
	// decisions are bit-identical to the unrejected path.
	absInvDen := math.Abs(invDen)
	marginR := (0.5 + sampleBias) * 2 * absInvDen
	m0 := (math.Abs(e0x) + math.Abs(e0y)) * marginR
	m1 := (math.Abs(e1x) + math.Abs(e1y)) * marginR
	m2 := m0 + m1

	// Extend the arrays to the bounding box's worst case once, then fill
	// by index: one capacity check per triangle instead of six append
	// bookkeeping sequences per emitted quad. The arrays are truncated to
	// the emitted count at the end.
	n := len(b.Mask)
	maxQ := ((y1-y0+1)/2 + 1) * ((x1-x0+1)/2 + 1)
	b.X = extend(b.X, n+maxQ)
	b.Y = extend(b.Y, n+maxQ)
	b.Mask = extend(b.Mask, n+maxQ)
	b.Depth = extend(b.Depth, (n+maxQ)*4)
	b.U = extend(b.U, n+maxQ)
	b.V = extend(b.V, n+maxQ)

	for y := y0; y < y1; y += 2 {
		// Sample rows of this quad row: py for samples 0,1 and 2,3.
		pyT := float64(y) + 0.5 + sampleBias
		pyB := float64(y+1) + 0.5 + sampleBias
		rowTIn := pyT < maxY && pyT >= minY
		rowBIn := pyB < maxY && pyB >= minY
		if !rowTIn && !rowBIn {
			continue
		}
		dyT := pyT - yC
		dyB := pyB - yC
		rowT0 := e0y * dyT // (xC-xB)*(py-yC), hoisted per row
		rowT1 := e1y * dyT
		rowB0 := e0y * dyB
		rowB1 := e1y * dyB
		// Quad-center y terms.
		cy := float64(y) + 1
		dyc := cy - yC
		cy0 := e0y * dyc
		cy1 := e1y * dyc

		for x := x0; x < x1; x += 2 {
			cx := float64(x) + 1
			dxc := cx - xC
			l0c := (e0x*dxc + cy0) * invDen
			l1c := (e1x*dxc + cy1) * invDen
			l2c := 1 - l0c - l1c
			if l0c < -m0 || l1c < -m1 || l2c < -m2 {
				continue
			}

			pxL := float64(x) + 0.5 + sampleBias
			pxR := float64(x+1) + 0.5 + sampleBias
			pxLIn := pxL < maxX && pxL >= minX
			pxRIn := pxR < maxX && pxR >= minX
			dxL := pxL - xC
			dxR := pxR - xC

			var mask uint8
			var depth [4]float64
			// Sample s: px alternates L,R; py alternates T,T,B,B.
			if pxLIn && rowTIn {
				l0 := (e0x*dxL + rowT0) * invDen
				l1 := (e1x*dxL + rowT1) * invDen
				l2 := 1 - l0 - l1
				if l0 >= 0 && l1 >= 0 && l2 >= 0 {
					mask |= 1 << 0
					depth[0] = l0*z0 + l1*z1 + l2*z2
				}
			}
			if pxRIn && rowTIn {
				l0 := (e0x*dxR + rowT0) * invDen
				l1 := (e1x*dxR + rowT1) * invDen
				l2 := 1 - l0 - l1
				if l0 >= 0 && l1 >= 0 && l2 >= 0 {
					mask |= 1 << 1
					depth[1] = l0*z0 + l1*z1 + l2*z2
				}
			}
			if pxLIn && rowBIn {
				l0 := (e0x*dxL + rowB0) * invDen
				l1 := (e1x*dxL + rowB1) * invDen
				l2 := 1 - l0 - l1
				if l0 >= 0 && l1 >= 0 && l2 >= 0 {
					mask |= 1 << 2
					depth[2] = l0*z0 + l1*z1 + l2*z2
				}
			}
			if pxRIn && rowBIn {
				l0 := (e0x*dxR + rowB0) * invDen
				l1 := (e1x*dxR + rowB1) * invDen
				l2 := 1 - l0 - l1
				if l0 >= 0 && l1 >= 0 && l2 >= 0 {
					mask |= 1 << 3
					depth[3] = l0*z0 + l1*z1 + l2*z2
				}
			}
			if mask == 0 {
				continue
			}
			b.X[n] = int32(x)
			b.Y[n] = int32(y)
			b.Mask[n] = mask
			d := n * 4
			b.Depth[d] = depth[0]
			b.Depth[d+1] = depth[1]
			b.Depth[d+2] = depth[2]
			b.Depth[d+3] = depth[3]
			b.U[n] = l0c*u0 + l1c*u1 + l2c*u2
			b.V[n] = l0c*v0 + l1c*v1 + l2c*v2
			n++
		}
	}
	b.X = b.X[:n]
	b.Y = b.Y[:n]
	b.Mask = b.Mask[:n]
	b.Depth = b.Depth[:n*4]
	b.U = b.U[:n]
	b.V = b.V[:n]
}

// extend grows s to newLen entries (contents beyond the previous length
// are unspecified), reallocating only when capacity is exhausted.
func extend[T any](s []T, newLen int) []T {
	if cap(s) >= newLen {
		return s[:newLen]
	}
	ns := make([]T, newLen, newLen+newLen/2)
	copy(ns, s)
	return ns
}

// batchPool recycles scratch batches for the callback wrapper so
// RasterizeQuads stays allocation-free in steady state.
var batchPool = sync.Pool{New: func() any { return new(QuadBatch) }}

// TestMask applies the depth test to the covered samples of the quad at
// (x, y) whose per-sample depths and coverage are given SoA-style
// (depth must have 4 entries in Quad sample order), updating the buffer
// for survivors and returning the surviving mask. This is TestQuad over
// a QuadBatch entry.
func (d *DepthBuffer) TestMask(x, y int, depth []float64, mask uint8) uint8 {
	_ = depth[3]
	var surviving uint8
	w, h := d.w, d.h
	x1, y1 := x+1, y+1
	col0 := uint(x) < uint(w) // one compare covers x < 0 and x >= w
	col1 := uint(x1) < uint(w)
	z := d.z
	if uint(y) < uint(h) {
		base := y * w
		if mask&1 != 0 && col0 {
			i := base + x
			if float32(depth[0]) < z[i] {
				z[i] = float32(depth[0])
				surviving |= 1
			}
		}
		if mask&2 != 0 && col1 {
			i := base + x1
			if float32(depth[1]) < z[i] {
				z[i] = float32(depth[1])
				surviving |= 2
			}
		}
	}
	if uint(y1) < uint(h) {
		base := y1 * w
		if mask&4 != 0 && col0 {
			i := base + x
			if float32(depth[2]) < z[i] {
				z[i] = float32(depth[2])
				surviving |= 4
			}
		}
		if mask&8 != 0 && col1 {
			i := base + x1
			if float32(depth[3]) < z[i] {
				z[i] = float32(depth[3])
				surviving |= 8
			}
		}
	}
	return surviving
}

// TestMaskReadOnly depth-tests the quad at (x, y) without updating the
// buffer — TestQuadReadOnly over a QuadBatch entry.
func (d *DepthBuffer) TestMaskReadOnly(x, y int, depth []float64, mask uint8) uint8 {
	_ = depth[3]
	var surviving uint8
	w, h := d.w, d.h
	x1, y1 := x+1, y+1
	col0 := uint(x) < uint(w)
	col1 := uint(x1) < uint(w)
	z := d.z
	if uint(y) < uint(h) {
		base := y * w
		if mask&1 != 0 && col0 && float32(depth[0]) < z[base+x] {
			surviving |= 1
		}
		if mask&2 != 0 && col1 && float32(depth[1]) < z[base+x1] {
			surviving |= 2
		}
	}
	if uint(y1) < uint(h) {
		base := y1 * w
		if mask&4 != 0 && col0 && float32(depth[2]) < z[base+x] {
			surviving |= 4
		}
		if mask&8 != 0 && col1 && float32(depth[3]) < z[base+x1] {
			surviving |= 8
		}
	}
	return surviving
}
