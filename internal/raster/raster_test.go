package raster

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
)

var testVP = geom.Viewport{Width: 64, Height: 64}

func fullscreenClip() geom.AABB2 {
	return geom.AABB2{Max: geom.Vec2{X: 64, Y: 64}}
}

func TestProcessDrawIdentityQuad(t *testing.T) {
	// An identity-transformed unit quad maps to the middle quarter of
	// NDC and must survive with 2 visible triangles.
	q := scene.Quad("q")
	tris, st := ProcessDraw(&q, geom.IdentityMat4(), testVP, 0, nil)
	if st.Visible != 2 || len(tris) != 2 {
		t.Fatalf("visible = %d (stats %+v)", len(tris), st)
	}
	if st.VerticesIn != 4 || st.PrimsIn != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcessDrawRejectsBehindCamera(t *testing.T) {
	q := scene.Quad("q")
	// Push the quad behind the camera with a perspective projection.
	proj := geom.Perspective(math.Pi/3, 1, 0.1, 100)
	mvp := proj.Mul(geom.Translate(geom.Vec3{Z: 5})) // +Z is behind
	_, st := ProcessDraw(&q, mvp, testVP, 0, nil)
	if st.Visible != 0 || st.Rejected != 2 {
		t.Fatalf("stats %+v, want all rejected", st)
	}
}

func TestProcessDrawRejectsOffscreen(t *testing.T) {
	q := scene.Quad("q")
	mvp := geom.Translate(geom.Vec3{X: 10}) // NDC x ~ 10: far off right
	_, st := ProcessDraw(&q, mvp, testVP, 0, nil)
	if st.Visible != 0 {
		t.Fatalf("stats %+v, want none visible", st)
	}
}

func TestProcessDrawCullsDegenerate(t *testing.T) {
	q := scene.Quad("q")
	mvp := geom.ScaleXYZ(geom.Vec3{X: 0, Y: 1, Z: 1}) // collapse X
	_, st := ProcessDraw(&q, mvp, testVP, 0, nil)
	if st.Degenerate != 2 {
		t.Fatalf("stats %+v, want 2 degenerate", st)
	}
}

func TestProcessDrawDepthBias(t *testing.T) {
	q := scene.Quad("q")
	tris, _ := ProcessDraw(&q, geom.IdentityMat4(), testVP, 0.25, nil)
	for _, tr := range tris {
		for _, v := range tr.Tri.V {
			if math.Abs(v.Z-0.75) > 1e-9 { // base depth 0.5 + bias
				t.Fatalf("depth = %v, want 0.75", v.Z)
			}
		}
	}
}

func TestRasterizeQuadsFullCoverage(t *testing.T) {
	// A triangle covering the whole left-lower half of a 16x16 region.
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0.5), v3(16, 0, 0.5), v3(0, 16, 0.5)}},
	}
	fragments := 0
	quads := 0
	RasterizeQuads(&tri, geom.AABB2{Max: geom.Vec2{X: 16, Y: 16}}, func(q *Quad) {
		quads++
		fragments += q.Coverage()
	})
	// Half of 256 pixels ~ 128; allow boundary slack.
	if fragments < 110 || fragments > 140 {
		t.Fatalf("fragments = %d, want ~128", fragments)
	}
	if quads == 0 || quads > 64 {
		t.Fatalf("quads = %d", quads)
	}
}

func TestRasterizeQuadsClipRestricts(t *testing.T) {
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0), v3(64, 0, 0), v3(0, 64, 0)}},
	}
	count := func(clip geom.AABB2) int {
		n := 0
		RasterizeQuads(&tri, clip, func(q *Quad) { n += q.Coverage() })
		return n
	}
	full := count(geom.AABB2{Max: geom.Vec2{X: 64, Y: 64}})
	tile := count(geom.AABB2{Min: geom.Vec2{X: 0, Y: 0}, Max: geom.Vec2{X: 32, Y: 32}})
	if tile >= full || tile == 0 {
		t.Fatalf("tile coverage %d vs full %d", tile, full)
	}
}

func TestRasterizeQuadsTilePartitionExact(t *testing.T) {
	// Rasterizing per 16px tile must reproduce exactly the full-screen
	// fragment count: the per-tile union partitions coverage.
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(3, 5, 0), v3(61, 17, 0), v3(22, 59, 0)}},
	}
	full := 0
	RasterizeQuads(&tri, fullscreenClip(), func(q *Quad) { full += q.Coverage() })
	tiled := 0
	for ty := 0; ty < 4; ty++ {
		for tx := 0; tx < 4; tx++ {
			clip := geom.AABB2{
				Min: geom.Vec2{X: float64(tx * 16), Y: float64(ty * 16)},
				Max: geom.Vec2{X: float64(tx*16 + 16), Y: float64(ty*16 + 16)},
			}
			RasterizeQuads(&tri, clip, func(q *Quad) { tiled += q.Coverage() })
		}
	}
	if full == 0 || tiled != full {
		t.Fatalf("tiled = %d, full = %d", tiled, full)
	}
}

func TestRasterizeQuadsOutsideClip(t *testing.T) {
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(100, 100, 0), v3(110, 100, 0), v3(100, 110, 0)}},
	}
	n := 0
	RasterizeQuads(&tri, fullscreenClip(), func(*Quad) { n++ })
	if n != 0 {
		t.Fatalf("quads outside clip = %d", n)
	}
}

func TestQuadCoverage(t *testing.T) {
	q := Quad{Mask: 0b1011}
	if q.Coverage() != 3 {
		t.Fatalf("Coverage = %d, want 3", q.Coverage())
	}
}

func TestQuadUVInterpolation(t *testing.T) {
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0), v3(32, 0, 0), v3(0, 32, 0)}},
		UV:  [3]geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}},
	}
	RasterizeQuads(&tri, fullscreenClip(), func(q *Quad) {
		wantU := (float64(q.X) + 1) / 32
		wantV := (float64(q.Y) + 1) / 32
		if math.Abs(q.U-wantU) > 1e-9 || math.Abs(q.V-wantV) > 1e-9 {
			t.Fatalf("quad (%d,%d) UV = (%v,%v), want (%v,%v)", q.X, q.Y, q.U, q.V, wantU, wantV)
		}
	})
}

func TestDepthBufferBasics(t *testing.T) {
	d := NewDepthBuffer(4, 4)
	if !d.TestAndSet(1, 1, 0.5) {
		t.Fatal("first write should pass")
	}
	if d.TestAndSet(1, 1, 0.7) {
		t.Fatal("farther fragment should fail")
	}
	if !d.TestAndSet(1, 1, 0.3) {
		t.Fatal("nearer fragment should pass")
	}
	if d.TestAndSet(-1, 0, 0.1) || d.TestAndSet(4, 0, 0.1) {
		t.Fatal("out-of-bounds should fail")
	}
	d.Clear()
	if !d.TestAndSet(1, 1, 0.9) {
		t.Fatal("after Clear any depth should pass")
	}
}

func TestDepthBufferTestQuad(t *testing.T) {
	d := NewDepthBuffer(4, 4)
	q := Quad{X: 0, Y: 0, Mask: 0b1111, Depth: [4]float64{0.5, 0.5, 0.5, 0.5}}
	if got := d.TestQuad(&q); got != 0b1111 {
		t.Fatalf("first quad mask = %b", got)
	}
	// Same quad again: fully occluded.
	if got := d.TestQuad(&q); got != 0 {
		t.Fatalf("occluded quad mask = %b", got)
	}
	// Nearer on two samples only.
	q2 := Quad{X: 0, Y: 0, Mask: 0b0011, Depth: [4]float64{0.2, 0.2}}
	if got := d.TestQuad(&q2); got != 0b0011 {
		t.Fatalf("partial quad mask = %b", got)
	}
}

func TestOverdrawOrderMatters(t *testing.T) {
	// Front-to-back: second (farther) surface fully occluded.
	d := NewDepthBuffer(16, 16)
	near := ScreenTriangle{Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0.2), v3(16, 0, 0.2), v3(0, 16, 0.2)}}}
	far := ScreenTriangle{Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0.8), v3(16, 0, 0.8), v3(0, 16, 0.8)}}}
	shaded := 0
	clip := geom.AABB2{Max: geom.Vec2{X: 16, Y: 16}}
	for _, tri := range []*ScreenTriangle{&near, &far} {
		RasterizeQuads(tri, clip, func(q *Quad) {
			m := *q
			m.Mask = d.TestQuad(q)
			shaded += m.Coverage()
		})
	}
	firstOnly := 0
	RasterizeQuads(&near, clip, func(q *Quad) { firstOnly += q.Coverage() })
	if shaded != firstOnly {
		t.Fatalf("shaded %d, want %d (far surface should be fully culled)", shaded, firstOnly)
	}
}

func TestProcessDrawAppendReusesSlice(t *testing.T) {
	q := scene.Quad("q")
	buf := make([]ScreenTriangle, 0, 16)
	tris, _ := ProcessDraw(&q, geom.IdentityMat4(), testVP, 0, buf)
	if len(tris) != 2 {
		t.Fatalf("len = %d", len(tris))
	}
	if &tris[0] != &buf[:1][0] {
		t.Fatal("output did not reuse provided backing array")
	}
}

func TestProcessDrawLargeMeshCounts(t *testing.T) {
	g := scene.Sphere("s", 6, 8)
	mvp := geom.Orthographic(-1, 1, -1, 1, -2, 2)
	tris, st := ProcessDraw(&g, mvp, testVP, 0, nil)
	if st.PrimsIn != g.TriangleCount() {
		t.Fatalf("PrimsIn = %d, want %d", st.PrimsIn, g.TriangleCount())
	}
	if st.Visible+st.Rejected+st.Degenerate != st.PrimsIn {
		t.Fatalf("stats don't partition: %+v", st)
	}
	if len(tris) != st.Visible {
		t.Fatalf("len(tris) = %d, Visible = %d", len(tris), st.Visible)
	}
	if st.Visible == 0 {
		t.Fatal("sphere should be visible")
	}
}

// v3 builds a geom.Vec3 from screen-space x, y and depth z.
func v3(x, y, z float64) geom.Vec3 {
	return geom.Vec3{X: x, Y: y, Z: z}
}
