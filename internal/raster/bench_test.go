package raster

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
)

func BenchmarkProcessDrawSphere(b *testing.B) {
	mesh := scene.Sphere("s", 6, 8)
	vp := geom.Viewport{Width: 320, Height: 160}
	mvp := geom.Perspective(1.0, 2.0, 0.1, 100).
		Mul(geom.Translate(geom.Vec3{Z: -3}))
	buf := make([]ScreenTriangle, 0, mesh.TriangleCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = ProcessDraw(&mesh, mvp, vp, 0, buf)
	}
}

func BenchmarkRasterizeQuads64(b *testing.B) {
	tri := ScreenTriangle{
		Tri: geom.Triangle2{V: [3]geom.Vec3{v3(0, 0, 0.5), v3(64, 4, 0.5), v3(8, 64, 0.5)}},
		UV:  [3]geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}},
	}
	clip := geom.AABB2{Max: geom.Vec2{X: 64, Y: 64}}
	b.ResetTimer()
	quads := 0
	for i := 0; i < b.N; i++ {
		RasterizeQuads(&tri, clip, func(q *Quad) { quads++ })
	}
	if quads == 0 {
		b.Fatal("no quads")
	}
}

func BenchmarkDepthTestQuad(b *testing.B) {
	d := NewDepthBuffer(64, 64)
	q := Quad{X: 30, Y: 30, Mask: 0b1111, Depth: [4]float64{0.5, 0.5, 0.5, 0.5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TestQuad(&q)
	}
}
