// Package raster implements the geometry processing and quad-granularity
// rasterization shared by the functional simulator (internal/funcsim) and
// the cycle-level timing simulator (internal/tbr). Keeping one
// implementation guarantees the two simulators agree on primitive
// visibility and fragment counts; they differ only in what they do with
// each work item.
//
// Rasterization proceeds in 2x2 pixel quads, the granularity real GPUs
// shade at (derivatives for mip selection come from quad neighbours) and
// the granularity at which the simulators charge costs.
package raster

import (
	"math"

	"repro/internal/geom"
	"repro/internal/gltrace"
)

// ScreenTriangle is a post-geometry, screen-space primitive ready for
// rasterization.
type ScreenTriangle struct {
	Tri geom.Triangle2
	// UV are the per-vertex texture coordinates.
	UV [3]geom.Vec2
}

// GeomStats counts what happened to a draw's primitives during geometry
// processing.
type GeomStats struct {
	// VerticesIn is the number of vertices fetched and shaded.
	VerticesIn int
	// PrimsIn is the number of primitives assembled.
	PrimsIn int
	// Rejected counts primitives discarded by trivial frustum
	// rejection or behind-the-camera vertices.
	Rejected int
	// Degenerate counts zero-area primitives dropped by the culler.
	Degenerate int
	// Visible is the number of primitives passed to the Tiling Engine.
	Visible int
}

// ProcessDraw transforms a mesh instance to screen space and performs
// clipping/culling, returning the visible screen triangles and geometry
// statistics.
//
// Clipping is simplified relative to a full Sutherland-Hodgman
// implementation: primitives with any vertex at w <= 0 (behind the
// camera) and primitives entirely outside the frustum are rejected;
// partially visible primitives are kept whole and clamped per-tile
// during rasterization. This preserves exact fragment counts (coverage
// testing is per-pixel) while avoiding the vertex-introduction
// bookkeeping full clipping requires.
func ProcessDraw(mesh *gltrace.Mesh, mvp geom.Mat4, vp geom.Viewport, depthBias float64, out []ScreenTriangle) ([]ScreenTriangle, GeomStats) {
	return ProcessDrawScratch(mesh, mvp, vp, depthBias, out, nil)
}

// xformed is one transformed vertex of a draw.
type xformed struct {
	clip geom.Vec4
	scr  geom.Vec3
	ok   bool
}

// DrawScratch holds the per-draw transform buffer ProcessDrawScratch
// reuses across draws, so a caller processing many draws (the timing
// simulator's geometry pass) performs no per-draw allocation.
type DrawScratch struct {
	xf []xformed
}

// ProcessDrawScratch is ProcessDraw with an optional reusable scratch
// buffer; a nil scratch allocates per call.
func ProcessDrawScratch(mesh *gltrace.Mesh, mvp geom.Mat4, vp geom.Viewport, depthBias float64, out []ScreenTriangle, scr *DrawScratch) ([]ScreenTriangle, GeomStats) {
	stats := GeomStats{VerticesIn: len(mesh.Vertices)}

	// Transform every vertex once (vertex caching: real hardware also
	// shades each indexed vertex once per draw).
	var xf []xformed
	if scr != nil {
		if cap(scr.xf) < len(mesh.Vertices) {
			scr.xf = make([]xformed, len(mesh.Vertices))
		}
		scr.xf = scr.xf[:len(mesh.Vertices)]
		xf = scr.xf
	} else {
		xf = make([]xformed, len(mesh.Vertices))
	}
	for i := range mesh.Vertices {
		v := &mesh.Vertices[i]
		c := mvp.MulVec4(v.Pos.ToVec4(1))
		x := xformed{clip: c}
		if c.W > 1e-9 {
			ndc := c.PerspectiveDivide()
			s := vp.ToScreen(ndc)
			s.Z = geom.Clamp(s.Z+depthBias, 0, 1)
			x.scr = s
			x.ok = true
		}
		xf[i] = x
	}

	for i := 0; i+2 < len(mesh.Indices); i += 3 {
		stats.PrimsIn++
		i0, i1, i2 := mesh.Indices[i], mesh.Indices[i+1], mesh.Indices[i+2]
		a, b, c := xf[i0], xf[i1], xf[i2]
		if !a.ok || !b.ok || !c.ok {
			stats.Rejected++
			continue
		}
		// Trivial frustum rejection in clip space: all three vertices
		// outside the same plane.
		if outsideSamePlane(a.clip, b.clip, c.clip) {
			stats.Rejected++
			continue
		}
		tri := geom.Triangle2{V: [3]geom.Vec3{a.scr, b.scr, c.scr}}
		// Screen-space rejection for primitives that survived the
		// conservative clip test but land outside the viewport.
		bounds := tri.Bounds()
		if bounds.Max.X < 0 || bounds.Max.Y < 0 ||
			bounds.Min.X >= float64(vp.Width) || bounds.Min.Y >= float64(vp.Height) {
			stats.Rejected++
			continue
		}
		if tri.Degenerate() {
			stats.Degenerate++
			continue
		}
		stats.Visible++
		out = append(out, ScreenTriangle{
			Tri: tri,
			UV: [3]geom.Vec2{
				{X: mesh.Vertices[i0].U, Y: mesh.Vertices[i0].V},
				{X: mesh.Vertices[i1].U, Y: mesh.Vertices[i1].V},
				{X: mesh.Vertices[i2].U, Y: mesh.Vertices[i2].V},
			},
		})
	}
	return out, stats
}

func outsideSamePlane(a, b, c geom.Vec4) bool {
	type test func(geom.Vec4) bool
	tests := [...]test{
		func(v geom.Vec4) bool { return v.X < -v.W },
		func(v geom.Vec4) bool { return v.X > v.W },
		func(v geom.Vec4) bool { return v.Y < -v.W },
		func(v geom.Vec4) bool { return v.Y > v.W },
		func(v geom.Vec4) bool { return v.Z < -v.W },
		func(v geom.Vec4) bool { return v.Z > v.W },
	}
	for _, t := range tests {
		if t(a) && t(b) && t(c) {
			return true
		}
	}
	return false
}

// Quad is one 2x2 fragment quad produced by rasterization. X, Y are the
// top-left pixel coordinates (always even relative to the quad grid).
type Quad struct {
	X, Y int
	// Mask has bit i set when sample i is covered. Sample order:
	// (0,0), (1,0), (0,1), (1,1).
	Mask uint8
	// Depth holds the interpolated depth per covered sample.
	Depth [4]float64
	// U, V are the interpolated texture coordinates at the quad center.
	U, V float64
}

// Coverage returns the number of covered fragments in the quad.
func (q *Quad) Coverage() int {
	n := 0
	for m := q.Mask; m != 0; m >>= 1 {
		n += int(m & 1)
	}
	return n
}

// sampleBias nudges sample points off exact pixel centers so that a
// sample never lies precisely on an edge shared by two triangles. This
// plays the role of a hardware top-left fill rule: adjacent triangles
// never both cover the same sample, so meshes neither double-shade nor
// crack along shared edges.
const sampleBias = 1.0 / 256

// RasterizeQuads walks the 2x2 quads of tri's bounding box intersected
// with clip (in pixels, max-exclusive), invoking fn for every quad with
// at least one covered sample. Quads are emitted row-major, the scan
// order of a hardware rasterizer.
//
// This is a callback adapter over QuadBatch.AppendQuads — the batched
// SoA rasterizer is the single implementation — kept for consumers
// (the functional simulator) that want per-quad delivery. The *Quad is
// only valid for the duration of the callback.
func RasterizeQuads(tri *ScreenTriangle, clip geom.AABB2, fn func(*Quad)) {
	b := batchPool.Get().(*QuadBatch)
	b.Reset()
	b.AppendQuads(tri, clip)
	var q Quad
	for i, n := 0, b.Len(); i < n; i++ {
		q = b.Quad(i)
		fn(&q)
	}
	batchPool.Put(b)
}

// DepthBuffer is a per-pixel depth buffer implementing the Early Z-Test.
// Smaller depth wins (depth 0 = near plane).
type DepthBuffer struct {
	w, h int
	z    []float32
}

// NewDepthBuffer returns a cleared w x h depth buffer.
func NewDepthBuffer(w, h int) *DepthBuffer {
	d := &DepthBuffer{w: w, h: h, z: make([]float32, w*h)}
	d.Clear()
	return d
}

// Clear resets every pixel to the far plane. The doubling copy turns
// the fill into memmove calls, which run at memory bandwidth instead of
// one store per element.
func (d *DepthBuffer) Clear() {
	z := d.z
	if len(z) == 0 {
		return
	}
	z[0] = math.MaxFloat32
	for i := 1; i < len(z); i *= 2 {
		copy(z[i:], z[:i])
	}
}

// TestAndSet performs the depth test at (x, y); when z passes (strictly
// nearer than the stored value) the buffer is updated and true is
// returned. Out-of-bounds coordinates fail the test.
func (d *DepthBuffer) TestAndSet(x, y int, z float64) bool {
	if x < 0 || y < 0 || x >= d.w || y >= d.h {
		return false
	}
	i := y*d.w + x
	if float32(z) < d.z[i] {
		d.z[i] = float32(z)
		return true
	}
	return false
}

// At returns the stored depth at (x, y), or +MaxFloat32 out of bounds.
func (d *DepthBuffer) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= d.w || y >= d.h {
		return math.MaxFloat32
	}
	return float64(d.z[y*d.w+x])
}

// TestQuad applies the depth test to every covered sample of q,
// returning the surviving coverage mask (and updating the buffer for
// survivors). This is the Early Z-Test operation at quad granularity.
func (d *DepthBuffer) TestQuad(q *Quad) uint8 {
	var surviving uint8
	for s := 0; s < 4; s++ {
		if q.Mask&(1<<s) == 0 {
			continue
		}
		x := q.X + (s & 1)
		y := q.Y + (s >> 1)
		if d.TestAndSet(x, y, q.Depth[s]) {
			surviving |= 1 << s
		}
	}
	return surviving
}

// TestQuadReadOnly depth-tests q without updating the buffer — the
// Early-Z behaviour of alpha-blended fragments, which must not occlude
// anything behind other transparent surfaces.
func (d *DepthBuffer) TestQuadReadOnly(q *Quad) uint8 {
	var surviving uint8
	for s := 0; s < 4; s++ {
		if q.Mask&(1<<s) == 0 {
			continue
		}
		x := q.X + (s & 1)
		y := q.Y + (s >> 1)
		if x < 0 || y < 0 || x >= d.w || y >= d.h {
			continue
		}
		if float32(q.Depth[s]) < d.z[y*d.w+x] {
			surviving |= 1 << s
		}
	}
	return surviving
}
