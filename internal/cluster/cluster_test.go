package cluster

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(rng *stats.RNG, k, perCluster, dims int, separation float64) ([][]float64, []int) {
	var data [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		center := make([]float64, dims)
		for j := range center {
			center[j] = float64(c) * separation * float64(j%2*2-1)
		}
		center[0] = float64(c) * separation
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dims)
			for j := range p {
				p[j] = center[j] + rng.Norm(0, 1)
			}
			data = append(data, p)
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestKMeansRecoverWellSeparatedBlobs(t *testing.T) {
	rng := stats.NewRNG(7)
	data, labels := blobs(rng, 3, 50, 4, 30)
	res := KMeans(data, 3, stats.NewRNG(1), 0)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// All points with the same true label must share an assignment.
	for c := 0; c < 3; c++ {
		first := -1
		for i, l := range labels {
			if l != c {
				continue
			}
			if first == -1 {
				first = res.Assign[i]
			} else if res.Assign[i] != first {
				t.Fatalf("true cluster %d split across k-means clusters", c)
			}
		}
	}
}

func TestKMeansSizesMatchAssignments(t *testing.T) {
	rng := stats.NewRNG(11)
	data, _ := blobs(rng, 4, 30, 3, 20)
	res := KMeans(data, 4, stats.NewRNG(2), 0)
	counts := make([]int, res.K)
	for _, a := range res.Assign {
		counts[a]++
	}
	for c := range counts {
		if counts[c] != res.Sizes[c] {
			t.Fatalf("cluster %d: size %d vs counted %d", c, res.Sizes[c], counts[c])
		}
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Fatalf("sizes sum to %d, want %d", total, len(data))
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	rng := stats.NewRNG(13)
	data, _ := blobs(rng, 3, 40, 5, 15)
	a := KMeans(data, 5, stats.NewRNG(99), 0)
	b := KMeans(data, 5, stats.NewRNG(99), 0)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.WCSS != b.WCSS {
		t.Fatal("same seed produced different WCSS")
	}
}

func TestKMeansK1(t *testing.T) {
	rng := stats.NewRNG(17)
	data, _ := blobs(rng, 2, 20, 3, 10)
	res := KMeans(data, 1, stats.NewRNG(1), 0)
	if res.Sizes[0] != len(data) {
		t.Fatal("k=1 must contain everything")
	}
	// Centroid must be the global mean.
	for j := 0; j < 3; j++ {
		mean := 0.0
		for _, x := range data {
			mean += x[j]
		}
		mean /= float64(len(data))
		if math.Abs(res.Centroids[0][j]-mean) > 1e-9 {
			t.Fatalf("centroid[%d] = %v, want %v", j, res.Centroids[0][j], mean)
		}
	}
}

func TestKMeansWCSSDecreasesWithK(t *testing.T) {
	rng := stats.NewRNG(23)
	data, _ := blobs(rng, 4, 40, 4, 12)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res := KMeans(data, k, stats.NewRNG(5), 0)
		if res.WCSS > prev+1e-6 {
			t.Fatalf("WCSS rose from %v to %v at k=%d", prev, res.WCSS, k)
		}
		prev = res.WCSS
	}
}

func TestKMeansNoEmptyClusters(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 20 + rng.Intn(60)
		data := make([][]float64, n)
		for i := range data {
			data[i] = []float64{rng.Norm(0, 10), rng.Norm(0, 10)}
		}
		k := 1 + rng.Intn(8)
		res := KMeans(data, k, rng.Split(), 0)
		for _, s := range res.Sizes {
			if s == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { KMeans(nil, 1, stats.NewRNG(1), 0) },
		"k0":     func() { KMeans([][]float64{{1}}, 0, stats.NewRNG(1), 0) },
		"k>n":    func() { KMeans([][]float64{{1}}, 2, stats.NewRNG(1), 0) },
		"ragged": func() { KMeans([][]float64{{1, 2}, {1}}, 1, stats.NewRNG(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRepresentativesAreClosestToCentroid(t *testing.T) {
	rng := stats.NewRNG(31)
	data, _ := blobs(rng, 3, 30, 3, 25)
	res := KMeans(data, 3, stats.NewRNG(3), 0)
	reps := Representatives(data, res)
	if len(reps) != 3 {
		t.Fatalf("reps = %v", reps)
	}
	for c, rep := range reps {
		if rep < 0 || res.Assign[rep] != c {
			t.Fatalf("representative %d of cluster %d invalid", rep, c)
		}
		repDist := sq(data[rep], res.Centroids[c])
		for i := range data {
			if res.Assign[i] == c && sq(data[i], res.Centroids[c]) < repDist-1e-12 {
				t.Fatalf("point %d closer to centroid %d than representative", i, c)
			}
		}
	}
}

func sq(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestBICPrefersTrueK(t *testing.T) {
	rng := stats.NewRNG(37)
	data, _ := blobs(rng, 4, 60, 3, 40)
	var scores []float64
	for k := 1; k <= 8; k++ {
		res := KMeans(data, k, stats.NewRNG(7), 0)
		scores = append(scores, BIC(data, res))
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	if best+1 != 4 {
		t.Fatalf("BIC chose k=%d, want 4 (scores %v)", best+1, scores)
	}
}

func TestBICDegenerateCases(t *testing.T) {
	data := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	res := KMeans(data, 3, stats.NewRNG(1), 0)
	if !math.IsInf(BIC(data, res), -1) {
		t.Fatal("K == n must score -Inf")
	}
	if !math.IsInf(BIC(nil, Result{K: 1}), -1) {
		t.Fatal("empty data must score -Inf")
	}
	// Identical points: perfect fit at k=1.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res1 := KMeans(same, 1, stats.NewRNG(1), 0)
	if !math.IsInf(BIC(same, res1), 1) {
		t.Fatal("zero-variance fit should score +Inf")
	}
}

func TestSearchFindsReasonableK(t *testing.T) {
	rng := stats.NewRNG(41)
	data, _ := blobs(rng, 5, 50, 4, 50)
	sr, err := Search(data, DefaultSearchConfig(), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.K < 3 || sr.Best.K > 8 {
		t.Fatalf("search chose k=%d for 5 blobs (scores %v)", sr.Best.K, sr.Scores)
	}
	if len(sr.Scores) < sr.Best.K {
		t.Fatalf("scores shorter than chosen k")
	}
}

func TestSearchThresholdTradeoff(t *testing.T) {
	// Lower T must never choose more clusters than higher T.
	rng := stats.NewRNG(43)
	data, _ := blobs(rng, 6, 40, 4, 30)
	low, err := Search(data, SearchConfig{Threshold: 0.3}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Search(data, SearchConfig{Threshold: 0.95}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if low.Best.K > high.Best.K {
		t.Fatalf("T=0.3 chose %d clusters, T=0.95 chose %d", low.Best.K, high.Best.K)
	}
}

func TestSearchHandlesUniformData(t *testing.T) {
	// Identical points: search must not crash and must pick k=1.
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{1, 2, 3}
	}
	sr, err := Search(data, DefaultSearchConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.K != 1 {
		t.Fatalf("uniform data clustered into %d", sr.Best.K)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(nil, DefaultSearchConfig(), stats.NewRNG(1)); err == nil {
		t.Fatal("accepted empty dataset")
	}
	if _, err := Search([][]float64{{1}}, SearchConfig{Threshold: 2}, stats.NewRNG(1)); err == nil {
		t.Fatal("accepted threshold > 1")
	}
}

func TestSearchRespectsMaxK(t *testing.T) {
	rng := stats.NewRNG(47)
	data, _ := blobs(rng, 8, 30, 3, 50)
	sr, err := Search(data, SearchConfig{Threshold: 0.85, MaxK: 3}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.K > 3 || sr.StoppedAt > 3 {
		t.Fatalf("MaxK=3 violated: k=%d stopped=%d", sr.Best.K, sr.StoppedAt)
	}
}

func TestSearchRestartsImproveOrEqual(t *testing.T) {
	rng := stats.NewRNG(53)
	data, _ := blobs(rng, 4, 40, 4, 8) // poorly separated: restarts matter
	one, err := Search(data, SearchConfig{Threshold: 0.85, MaxK: 6, Restarts: 1}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Search(data, SearchConfig{Threshold: 0.85, MaxK: 6, Restarts: 5}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// With the same final k, more restarts can only lower WCSS.
	if many.Best.K == one.Best.K && many.Best.WCSS > one.Best.WCSS+1e-9 {
		t.Fatalf("restarts raised WCSS: %v vs %v", many.Best.WCSS, one.Best.WCSS)
	}
}

func TestKMeansBitStableAcrossParallelism(t *testing.T) {
	// Results must be bit-identical regardless of GOMAXPROCS: the
	// parallel reduction merges fixed-size chunks in order.
	rng := stats.NewRNG(77)
	n, d := 3000, 24 // large enough to trigger the parallel path
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, d)
		for j := range data[i] {
			data[i][j] = rng.Norm(float64(i%6*10), 1)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	serial := KMeans(data, 6, stats.NewRNG(5), 0)
	runtime.GOMAXPROCS(prev)
	parallel := KMeans(data, 6, stats.NewRNG(5), 0)
	if serial.WCSS != parallel.WCSS {
		t.Fatalf("WCSS differs: %v vs %v", serial.WCSS, parallel.WCSS)
	}
	for i := range serial.Assign {
		if serial.Assign[i] != parallel.Assign[i] {
			t.Fatalf("assignment differs at %d", i)
		}
	}
	for c := range serial.Centroids {
		for j := range serial.Centroids[c] {
			if serial.Centroids[c][j] != parallel.Centroids[c][j] {
				t.Fatalf("centroid (%d,%d) differs", c, j)
			}
		}
	}
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	rng := stats.NewRNG(61)
	data, labels := blobs(rng, 3, 40, 4, 30)
	res, err := Agglomerative(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	for c := 0; c < 3; c++ {
		first := -1
		for i, l := range labels {
			if l != c {
				continue
			}
			if first == -1 {
				first = res.Assign[i]
			} else if res.Assign[i] != first {
				t.Fatalf("true cluster %d split", c)
			}
		}
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestAgglomerativeDeterministic(t *testing.T) {
	rng := stats.NewRNG(67)
	data, _ := blobs(rng, 4, 25, 3, 15)
	a, err := Agglomerative(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Agglomerative(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("agglomerative not deterministic")
		}
	}
	if a.WCSS != b.WCSS {
		t.Fatal("WCSS differs")
	}
}

func TestAgglomerativeComparableToKMeans(t *testing.T) {
	// On well-separated data both methods find the same partition, so
	// their WCSS should match closely.
	rng := stats.NewRNG(71)
	data, _ := blobs(rng, 5, 30, 4, 40)
	ward, err := Agglomerative(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	km := KMeans(data, 5, stats.NewRNG(9), 0)
	if ward.WCSS > km.WCSS*1.05+1e-9 {
		t.Fatalf("Ward WCSS %v much worse than k-means %v", ward.WCSS, km.WCSS)
	}
}

func TestAgglomerativeK1AndKn(t *testing.T) {
	rng := stats.NewRNG(73)
	data, _ := blobs(rng, 2, 10, 2, 10)
	one, err := Agglomerative(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.K != 1 || one.Sizes[0] != len(data) {
		t.Fatalf("k=1 result %+v", one)
	}
	all, err := Agglomerative(data, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if all.K != len(data) || all.WCSS != 0 {
		t.Fatalf("k=n should be a perfect fit: k=%d wcss=%v", all.K, all.WCSS)
	}
}

func TestAgglomerativeSizeBound(t *testing.T) {
	data := make([][]float64, 4097)
	for i := range data {
		data[i] = []float64{float64(i)}
	}
	if _, err := Agglomerative(data, 2); err == nil {
		t.Fatal("accepted oversized input")
	}
}

func TestXMeansFindsPlantedClusters(t *testing.T) {
	rng := stats.NewRNG(81)
	data, labels := blobs(rng, 4, 40, 4, 40)
	res, err := XMeans(data, 1, 16, stats.NewRNG(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 4 || res.K > 10 {
		t.Fatalf("x-means chose k=%d for 4 blobs", res.K)
	}
	// Planted clusters must not be mixed.
	clusterLabel := map[int]int{}
	for i, l := range labels {
		c := res.Assign[i]
		if prev, ok := clusterLabel[c]; ok && prev != l {
			t.Fatalf("cluster %d mixes blobs %d and %d", c, prev, l)
		}
		clusterLabel[c] = l
	}
}

func TestXMeansRespectsBounds(t *testing.T) {
	rng := stats.NewRNG(83)
	data, _ := blobs(rng, 6, 30, 3, 50)
	res, err := XMeans(data, 2, 3, stats.NewRNG(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 || res.K > 3 {
		t.Fatalf("k=%d outside [2,3]", res.K)
	}
}

func TestXMeansValidation(t *testing.T) {
	if _, err := XMeans(nil, 1, 2, stats.NewRNG(1), 0); err == nil {
		t.Fatal("accepted empty data")
	}
	data := [][]float64{{1}, {2}, {3}}
	if _, err := XMeans(data, 0, 2, stats.NewRNG(1), 0); err == nil {
		t.Fatal("accepted kMin=0")
	}
	if _, err := XMeans(data, 2, 1, stats.NewRNG(1), 0); err == nil {
		t.Fatal("accepted kMax<kMin")
	}
}

func TestXMeansUniformDataStaysAtKMin(t *testing.T) {
	data := make([][]float64, 40)
	for i := range data {
		data[i] = []float64{3, 3}
	}
	res, err := XMeans(data, 1, 10, stats.NewRNG(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("uniform data split into %d", res.K)
	}
}
