package cluster

import (
	"math"
	"testing"

	"repro/internal/xmath/stats"
)

// dup returns n copies of the point p.
func dup(p []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = clone(p)
	}
	return out
}

// TestKMeansMultipleEmptyClustersGetDistinctReseeds plants seeds so far
// from the data that every point lands in cluster 0 on the first
// assignment, emptying all the others at once. The repair must hand
// each empty cluster a DIFFERENT point: the old code recomputed the
// same farthest point for all of them, producing duplicate centroids
// that left one cluster empty forever.
func TestKMeansMultipleEmptyClustersGetDistinctReseeds(t *testing.T) {
	data := append(dup([]float64{0, 0}, 5),
		[]float64{10, 0},
		[]float64{0, 10},
	)
	seeds := [][]float64{{0, 0}, {500, 500}, {600, 600}}
	res := KMeansSeeded(data, 3, stats.NewRNG(1), 0, seeds)

	for c, cen := range res.Centroids {
		for j, v := range cen {
			if math.IsNaN(v) {
				t.Fatalf("centroid %d dim %d is NaN", c, j)
			}
		}
	}
	// The data has 3 distinct locations, so a correct repair ends with
	// every cluster populated (the old code left one permanently empty).
	for c, s := range res.Sizes {
		if s == 0 {
			t.Fatalf("cluster %d still empty after reseed repair (sizes %v)", c, res.Sizes)
		}
	}
	// With all clusters landing on distinct locations the fit is exact.
	if res.WCSS != 0 {
		t.Fatalf("WCSS = %v, want 0 for 3 clusters over 3 distinct points", res.WCSS)
	}
	// Every cluster has a representative, so downstream frame selection
	// cannot hit the rep < 0 error path.
	for c, rep := range Representatives(data, res) {
		if rep < 0 {
			t.Fatalf("cluster %d has no representative", c)
		}
	}
	// Convergence, not churn: the repair must not re-trigger `changed`
	// every iteration once centroids stop moving.
	if res.Iterations >= DefaultMaxIterations {
		t.Fatalf("repair churned for all %d iterations", res.Iterations)
	}
}

// TestKMeansMoreClustersThanDistinctPoints: with only two distinct
// locations and k=4, two clusters can never be filled. The repair must
// terminate quickly (no churn to maxIter), keep all centroids finite,
// and still fit the distinct locations exactly.
func TestKMeansMoreClustersThanDistinctPoints(t *testing.T) {
	data := append(dup([]float64{1, 2}, 6), dup([]float64{8, 9}, 2)...)
	seeds := [][]float64{{1, 2}, {100, 100}, {200, 200}, {300, 300}}
	res := KMeansSeeded(data, 4, stats.NewRNG(3), 0, seeds)

	for c, cen := range res.Centroids {
		for _, v := range cen {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("cluster %d centroid not finite: %v", c, cen)
			}
		}
	}
	if res.WCSS != 0 {
		t.Fatalf("WCSS = %v, want 0 (both distinct locations coverable)", res.WCSS)
	}
	if res.Iterations >= DefaultMaxIterations {
		t.Fatalf("unfillable clusters churned for all %d iterations", res.Iterations)
	}
	nonEmpty := 0
	for _, s := range res.Sizes {
		if s > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("non-empty clusters = %d, want 2 (one per distinct location)", nonEmpty)
	}
}

// TestBICDefinedWithEmptyClusters: an empty cluster must not count
// toward the parameter penalty or the variance denominator. With R = 3
// and a declared K = 3 but only two populated clusters, the score must
// be finite — the old code returned -Inf for any R <= K.
func TestBICDefinedWithEmptyClusters(t *testing.T) {
	data := [][]float64{{0, 0}, {0.5, 0}, {10, 10}}
	res := Result{
		K:         3,
		Sizes:     []int{2, 1, 0},
		WCSS:      0.125,
		Centroids: [][]float64{{0.25, 0}, {10, 10}, {0, 0}},
	}
	score := BIC(data, res)
	if math.IsNaN(score) || math.IsInf(score, 0) {
		t.Fatalf("score = %v, want finite for a singleton fit with an empty cluster", score)
	}
	// The effective-K score must match an explicit K=2 result over the
	// same partition: the empty cluster carries no parameters.
	two := Result{K: 2, Sizes: []int{2, 1}, WCSS: 0.125}
	if got := BIC(data, two); got != score {
		t.Fatalf("empty cluster changed the score: %v vs %v", score, got)
	}
}

// TestBICGuardsNaNAndZeroVariance pins the contract Search depends on:
// NaN statistics score -Inf (never propagate), a zero-variance fit
// stays +Inf, and all-singleton clusterings stay -Inf.
func TestBICGuardsNaNAndZeroVariance(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}, {4}}
	if s := BIC(data, Result{K: 2, Sizes: []int{2, 2}, WCSS: math.NaN()}); !math.IsInf(s, -1) {
		t.Fatalf("NaN WCSS scored %v, want -Inf", s)
	}
	if s := BIC(data, Result{K: 2, Sizes: []int{2, 2}, WCSS: 0}); !math.IsInf(s, 1) {
		t.Fatalf("zero-variance fit scored %v, want +Inf", s)
	}
	if s := BIC(data, Result{K: 4, Sizes: []int{1, 1, 1, 1}, WCSS: 0.5}); !math.IsInf(s, -1) {
		t.Fatalf("all-singleton fit scored %v, want -Inf", s)
	}
}

// TestSearchOnDuplicateHeavyData runs the full search end to end on a
// matrix dominated by repeated rows — the shape real frame-feature
// data takes when a scene holds still. It must terminate, choose a
// small k, and yield representatives for every cluster.
func TestSearchOnDuplicateHeavyData(t *testing.T) {
	data := append(dup([]float64{1, 1, 1}, 40),
		append(dup([]float64{9, 9, 9}, 3), dup([]float64{5, 1, 7}, 2)...)...)
	sr, err := Search(data, DefaultSearchConfig(), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.K < 1 || sr.Best.K > 5 {
		t.Fatalf("search chose k=%d on 3 distinct locations", sr.Best.K)
	}
	for c, rep := range Representatives(data, sr.Best) {
		if sr.Best.Sizes[c] > 0 && rep < 0 {
			t.Fatalf("populated cluster %d has no representative", c)
		}
	}
	for _, s := range sr.Scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN leaked into search scores: %v", sr.Scores)
		}
	}
}
