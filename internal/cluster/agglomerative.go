package cluster

import (
	"container/heap"
	"fmt"

	"repro/internal/xmath/linalg"
)

// maxAgglomerativePoints bounds the O(n^2) distance matrix of the
// agglomerative path (4096 points = 128 MiB of float64 distances).
const maxAgglomerativePoints = 4096

// Agglomerative performs bottom-up hierarchical clustering with Ward
// linkage until k clusters remain, returning the same Result shape as
// KMeans (centroids are cluster means). It exists as a methodological
// comparator for the paper's k-means choice: Ward minimizes the same
// within-cluster-variance objective greedily and deterministically (no
// seeding), at O(n^2 log n) time and O(n^2) memory.
//
// It panics on invalid k/data (matching KMeans) and returns an error
// only for inputs exceeding the documented size bound.
func Agglomerative(data [][]float64, k int) (Result, error) {
	n := len(data)
	if n == 0 {
		panic("cluster: Agglomerative on empty dataset")
	}
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: k=%d out of range [1,%d]", k, n))
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			panic(fmt.Sprintf("cluster: row %d has %d dims, want %d", i, len(row), d))
		}
	}
	if n > maxAgglomerativePoints {
		return Result{}, fmt.Errorf("cluster: %d points exceed the agglomerative bound of %d", n, maxAgglomerativePoints)
	}

	// Active cluster state: sums, sizes, member roots (union-find-ish
	// via parent links resolved at the end).
	type clusterState struct {
		sum   []float64
		size  int
		alive bool
	}
	states := make([]clusterState, n)
	parent := make([]int, n)
	for i := range states {
		states[i] = clusterState{sum: clone(data[i]), size: 1, alive: true}
		parent[i] = i
	}

	// Ward distance between clusters a, b:
	//   (|a||b| / (|a|+|b|)) * ||mean(a) - mean(b)||^2
	ward := func(a, b int) float64 {
		sa, sb := &states[a], &states[b]
		na, nb := float64(sa.size), float64(sb.size)
		dist := 0.0
		for j := 0; j < d; j++ {
			diff := sa.sum[j]/na - sb.sum[j]/nb
			dist += diff * diff
		}
		return na * nb / (na + nb) * dist
	}

	// Lazy-deletion heap of candidate merges.
	h := &mergeHeap{}
	version := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			heap.Push(h, merge{cost: ward(i, j), a: i, b: j, va: 0, vb: 0})
		}
	}

	remaining := n
	for remaining > k && h.Len() > 0 {
		m := heap.Pop(h).(*merge)
		if !states[m.a].alive || !states[m.b].alive ||
			version[m.a] != m.va || version[m.b] != m.vb {
			continue // stale candidate
		}
		// Merge b into a.
		sa, sb := &states[m.a], &states[m.b]
		for j := 0; j < d; j++ {
			sa.sum[j] += sb.sum[j]
		}
		sa.size += sb.size
		sb.alive = false
		parent[m.b] = m.a
		version[m.a]++
		remaining--
		// Push fresh candidates against every other live cluster.
		for o := 0; o < n; o++ {
			if o == m.a || !states[o].alive {
				continue
			}
			a, b := m.a, o
			heap.Push(h, merge{cost: ward(a, b), a: a, b: b, va: version[a], vb: version[b]})
		}
	}

	// Resolve final assignments.
	root := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	rootToCluster := make(map[int]int)
	res := Result{K: remaining}
	res.Assign = make([]int, n)
	for i := 0; i < n; i++ {
		r := root(i)
		c, ok := rootToCluster[r]
		if !ok {
			c = len(rootToCluster)
			rootToCluster[r] = c
		}
		res.Assign[i] = c
	}
	res.Sizes = make([]int, res.K)
	res.Centroids = make([][]float64, res.K)
	for r, c := range rootToCluster {
		st := &states[r]
		centroid := make([]float64, d)
		for j := 0; j < d; j++ {
			centroid[j] = st.sum[j] / float64(st.size)
		}
		res.Centroids[c] = centroid
		res.Sizes[c] = st.size
	}
	for i, x := range data {
		res.WCSS += linalg.SquaredDistance(x, res.Centroids[res.Assign[i]])
	}
	return res, nil
}

// merge is a candidate cluster merge with version stamps for lazy
// deletion.
type merge struct {
	cost   float64
	a, b   int
	va, vb int
}

type mergeHeap []*merge

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, toMerge(x)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

func toMerge(x any) *merge {
	switch v := x.(type) {
	case *merge:
		return v
	case merge:
		return &v
	default:
		panic(fmt.Sprintf("cluster: bad heap element %T", x))
	}
}
