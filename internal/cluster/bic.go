package cluster

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/xmath/stats"
)

// BIC computes the Bayesian Information Criterion score of a clustering
// using the x-means formulation the paper cites ([28], [29]), Eq. (5)-(6):
//
//	BIC(φ) = l̂(D) − (p/2)·log R
//	l̂(D)  = Σ_n R_n·log R_n − R·log R − (R·M/2)·log(2πσ²) − (M/2)(R−K)
//
// with R points of dimension M in K clusters, p = K(M+1) free parameters,
// and σ² the average variance of the Euclidean distance from each point
// to its centroid, estimated as WCSS/(R−K).
//
// Higher is better. Clusterings where every point sits in its own
// cluster or with an undefined variance are degenerate; they get -Inf
// so the search never selects them over meaningful fits. K counts only
// non-empty clusters: an empty cluster (possible on duplicate-heavy
// data even after the Lloyd reseed repair) carries no fitted
// parameters, so it must neither inflate the penalty term nor push the
// variance denominator R-K to zero. That keeps the score defined for
// singleton-cluster results such as K = R with one empty cluster.
func BIC(data [][]float64, res Result) float64 {
	r := float64(len(data))
	if len(data) == 0 || res.K <= 0 {
		return math.Inf(-1)
	}
	// Effective cluster count: only clusters that captured points.
	kEff := 0
	for _, rn := range res.Sizes {
		if rn > 0 {
			kEff++
		}
	}
	if kEff == 0 {
		// No Sizes recorded (hand-built Result): fall back to the
		// declared K so a well-formed clustering still scores.
		kEff = res.K
	}
	m := float64(len(data[0]))
	k := float64(kEff)
	if len(data) <= kEff || math.IsNaN(res.WCSS) {
		return math.Inf(-1)
	}
	sigma2 := res.WCSS / (r - k)
	if sigma2 <= 0 {
		// A perfect fit: the likelihood is unbounded. Treat as the
		// best possible score so exact clusterings win.
		return math.Inf(1)
	}

	logLikelihood := 0.0
	for _, rn := range res.Sizes {
		if rn > 0 {
			logLikelihood += float64(rn) * math.Log(float64(rn))
		}
	}
	logLikelihood -= r * math.Log(r)
	logLikelihood -= (r * m / 2) * math.Log(2*math.Pi*sigma2)
	logLikelihood -= (m / 2) * (r - k)

	p := k * (m + 1)
	return logLikelihood - (p/2)*math.Log(r)
}

// SearchConfig controls the iterative cluster-count search of
// Section III-F.
type SearchConfig struct {
	// Threshold is T: the chosen clustering must score at least
	// min + T*(max-min) over the explored BIC scores. The paper uses
	// 0.85.
	Threshold float64
	// MaxK caps the search (0 = min(n/2, 56)).
	MaxK int
	// MaxIterations bounds each k-means run (0 = default).
	MaxIterations int
	// Restarts runs each small k this many times with different seeds
	// and keeps the lowest-WCSS result (0 = 1). Beyond k = 10 the
	// search relies on x-means-style warm starts (refining the previous
	// clustering with one more centroid), which keeps WCSS monotone in
	// k at a fraction of the cost.
	Restarts int
	// Patience is how many consecutive non-improving k values end the
	// search. The paper stops at the first BIC drop (Patience = 1);
	// the default 3 tolerates k-means seed noise.
	Patience int
	// Obs, when non-nil and enabled, receives k-means run/iteration
	// counters and a per-run iteration histogram from the search.
	Obs *obs.Registry
}

// DefaultSearchConfig returns the paper's settings (T = 0.85) with
// restart/patience smoothing of k-means initialization noise.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{Threshold: 0.85, Restarts: 3, Patience: 3}
}

// SearchResult is the outcome of the cluster-count search.
type SearchResult struct {
	// Best is the selected clustering.
	Best Result
	// Scores[i] is the BIC score of k = i+1, for every k explored.
	Scores []float64
	// StoppedAt is the largest k explored (where BIC first dropped or
	// the cap was hit).
	StoppedAt int
}

// Search explores k = 1, 2, ... computing the BIC score for each
// clustering, stops when the score drops below the previous one (or at
// MaxK), and selects the smallest k whose score reaches
// min + Threshold*(max-min) — exactly the procedure of Section III-F.
func Search(data [][]float64, cfg SearchConfig, rng *stats.RNG) (SearchResult, error) {
	n := len(data)
	if n == 0 {
		return SearchResult{}, fmt.Errorf("cluster: search on empty dataset")
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return SearchResult{}, fmt.Errorf("cluster: threshold %v out of [0,1]", cfg.Threshold)
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = n / 2
		if maxK > 56 {
			maxK = 56
		}
	}
	if maxK > n {
		maxK = n
	}
	if maxK < 1 {
		maxK = 1
	}
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	patience := cfg.Patience
	if patience < 1 {
		patience = 1
	}

	// Fresh k-means++ restarts are worthwhile at small k where the
	// solution landscape is rough; at larger k the warm start dominates
	// and fresh restarts only burn time, so they thin out.
	const freshRestartMaxK = 10
	const freshRestartEvery = 5

	var (
		cRuns  = cfg.Obs.Counter("cluster.kmeans.runs")
		cIters = cfg.Obs.Counter("cluster.kmeans.iterations")
		hIters = cfg.Obs.Histogram("cluster.kmeans.iterations_per_run")
	)
	record := func(res Result) Result {
		cRuns.Inc()
		cIters.Add(uint64(res.Iterations))
		hIters.Observe(uint64(res.Iterations))
		return res
	}

	var (
		results  []Result
		scores   []float64
		bestSeen = math.Inf(-1)
		dry      = 0
		prevRes  Result
	)
	for k := 1; k <= maxK; k++ {
		best := Result{}
		bestWCSS := math.Inf(1)
		fresh := 1
		if k <= freshRestartMaxK {
			fresh = restarts
		} else if k%freshRestartEvery != 0 {
			fresh = 0
		}
		for r := 0; r < fresh; r++ {
			res := record(KMeans(data, k, rng.Split(), cfg.MaxIterations))
			if res.WCSS < bestWCSS {
				best, bestWCSS = res, res.WCSS
			}
		}
		if k > 1 {
			// x-means-style warm start: refine the previous best
			// clustering with one extra centroid. This keeps WCSS
			// (near-)monotone in k so the BIC stop rule fires on the
			// real optimum, not on a k-means local-minimum artifact.
			res := record(KMeansSeeded(data, k, rng.Split(), cfg.MaxIterations, prevRes.Centroids))
			if res.WCSS < bestWCSS {
				best, bestWCSS = res, res.WCSS
			}
		}
		prevRes = best
		score := BIC(data, best)
		results = append(results, best)
		scores = append(scores, score)
		if math.IsInf(score, 1) {
			// Perfect fit: no larger k can do better.
			break
		}
		if score > bestSeen {
			bestSeen = score
			dry = 0
		} else if k > 1 {
			dry++
			if dry >= patience {
				break
			}
		}
	}

	// Selection: smallest k reaching Threshold of the score spread.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		if math.IsInf(s, 0) {
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	chosen := len(scores) - 1
	if !math.IsInf(lo, 0) && !math.IsInf(hi, 0) && hi > lo {
		cut := lo + cfg.Threshold*(hi-lo)
		for i, s := range scores {
			if s >= cut {
				chosen = i
				break
			}
		}
	} else {
		// All scores equal (or a perfect fit ended the search): pick
		// the last explored, which is the best known.
		for i, s := range scores {
			if math.IsInf(s, 1) {
				chosen = i
				break
			}
		}
	}
	return SearchResult{Best: results[chosen], Scores: scores, StoppedAt: len(scores)}, nil
}
