// Package cluster implements the clustering machinery of Section III-E
// and III-F of the paper: Lloyd's k-means with k-means++ seeding, the
// Bayesian Information Criterion score of Eq. (5)-(6), and the
// iterative cluster-count search with the spread-threshold selection
// rule (T = 0.85).
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/xmath/linalg"
	"repro/internal/xmath/stats"
)

// Result is one clustering of a dataset.
type Result struct {
	// K is the number of clusters.
	K int
	// Centroids[k] is the mean of cluster k.
	Centroids [][]float64
	// Assign[i] is the cluster of point i.
	Assign []int
	// Sizes[k] is the number of points in cluster k.
	Sizes []int
	// WCSS is the within-cluster sum of squares (Eq. 4's objective).
	WCSS float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// DefaultMaxIterations bounds Lloyd's algorithm.
const DefaultMaxIterations = 100

// KMeans clusters data into k groups using k-means++ seeding and Lloyd
// iterations, deterministically in rng. maxIter <= 0 selects
// DefaultMaxIterations. It panics if k < 1, data is empty, k > len(data),
// or rows are ragged.
func KMeans(data [][]float64, k int, rng *stats.RNG, maxIter int) Result {
	return KMeansSeeded(data, k, rng, maxIter, nil)
}

// KMeansSeeded is KMeans with optional initial centroids. When fewer
// than k seeds are given the remainder are drawn k-means++-style from
// the points farthest from the existing seeds; extra seeds are ignored.
// Warm-starting from a (k-1)-clustering's centroids makes WCSS decrease
// (near-)monotonically in k, which the BIC search relies on.
func KMeansSeeded(data [][]float64, k int, rng *stats.RNG, maxIter int, seeds [][]float64) Result {
	n := len(data)
	if n == 0 {
		panic("cluster: KMeans on empty dataset")
	}
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: k=%d out of range [1,%d]", k, n))
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			panic(fmt.Sprintf("cluster: row %d has %d dims, want %d", i, len(row), d))
		}
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	var centroids [][]float64
	switch {
	case len(seeds) == 0:
		centroids = seedPlusPlus(data, k, rng)
	default:
		centroids = make([][]float64, 0, k)
		for _, s := range seeds {
			if len(centroids) == k {
				break
			}
			if len(s) != d {
				panic(fmt.Sprintf("cluster: seed has %d dims, want %d", len(s), d))
			}
			centroids = append(centroids, clone(s))
		}
		centroids = extendPlusPlus(data, centroids, k, rng)
	}
	assign := make([]int, n)
	sizes := make([]int, k)
	res := Result{K: k}

	for iter := 0; iter < maxIter; iter++ {
		changed := assignAndSum(data, centroids, assign, sizes, iter == 0)
		// Update step: per-chunk partial sums merged in chunk order, so
		// the result is bit-identical regardless of parallelism.
		next := sumByCluster(data, assign, k, d)
		// taken marks points already consumed as reseeds this iteration:
		// when several clusters empty out at once, each must get a
		// DISTINCT farthest point — handing them all the same one (the
		// scan result never changes within the iteration) creates
		// duplicate centroids that keep a cluster empty forever.
		var taken map[int]bool
		for c := range next {
			if sizes[c] == 0 {
				// Empty cluster: reseed on the farthest unclaimed point
				// from its current centroid, the standard Lloyd repair.
				far, farD := -1, -1.0
				for i, x := range data {
					if taken[i] {
						continue
					}
					if dist := linalg.SquaredDistance(x, centroids[assign[i]]); dist > farD {
						far, farD = i, dist
					}
				}
				if far < 0 {
					// More empty clusters than points (mass-duplicate
					// data): no repair exists; keep the old centroid
					// rather than fabricating one.
					copy(next[c], centroids[c])
					continue
				}
				if taken == nil {
					taken = make(map[int]bool)
				}
				taken[far] = true
				copy(next[c], data[far])
				// Only count the repair as progress when it actually
				// moved the centroid; on degenerate data the same
				// reseed would otherwise churn until maxIter.
				if !equalVec(next[c], centroids[c]) {
					changed = true
				}
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		centroids = next
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
	}

	// Final stats.
	assignAndSum(data, centroids, assign, sizes, true)
	wcss := 0.0
	for i, x := range data {
		wcss += linalg.SquaredDistance(x, centroids[assign[i]])
	}
	res.Centroids = centroids
	res.Assign = assign
	res.Sizes = sizes
	res.WCSS = wcss
	return res
}

// parallelChunk is the row granularity of the parallel assignment step.
const parallelChunk = 512

// parallelThreshold is the per-iteration work (n*k*d multiplications)
// above which k-means fans out across cores. Below it, goroutine
// overhead dominates.
const parallelThreshold = 1 << 21

// assignAndSum performs the k-means assignment step, filling assign and
// sizes, and reports whether any assignment changed (always true when
// force is set). Deterministic regardless of parallelism: each point's
// assignment is independent, and sizes are recounted from the final
// assignment.
func assignAndSum(data [][]float64, centroids [][]float64, assign []int, sizes []int, force bool) bool {
	n := len(data)
	k := len(centroids)
	d := 0
	if n > 0 {
		d = len(data[0])
	}
	assignRange := func(lo, hi int) bool {
		changed := false
		for i := lo; i < hi; i++ {
			x := data[i]
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if dist := linalg.SquaredDistance(x, centroids[c]); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				changed = true
				assign[i] = best
			}
		}
		return changed
	}

	var changed bool
	if n*k*d >= parallelThreshold && n > 2*parallelChunk {
		chunks := (n + parallelChunk - 1) / parallelChunk
		results := make([]bool, chunks)
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		if workers > chunks {
			workers = chunks
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= chunks {
						return
					}
					lo := ci * parallelChunk
					hi := min(lo+parallelChunk, n)
					results[ci] = assignRange(lo, hi)
				}
			}()
		}
		wg.Wait()
		for _, r := range results {
			changed = changed || r
		}
	} else {
		changed = assignRange(0, n)
	}

	for i := range sizes {
		sizes[i] = 0
	}
	for _, a := range assign {
		sizes[a]++
	}
	return changed || force
}

// sumByCluster accumulates per-cluster coordinate sums. Partial sums are
// computed per fixed-size chunk and merged in chunk order, so the
// floating-point result is identical for any worker count.
func sumByCluster(data [][]float64, assign []int, k, d int) [][]float64 {
	n := len(data)
	out := make([][]float64, k)
	backing := make([]float64, k*d)
	for c := range out {
		out[c], backing = backing[:d], backing[d:]
	}
	sumRange := func(dst []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dst[assign[i]*d : (assign[i]+1)*d]
			for j, v := range data[i] {
				row[j] += v
			}
		}
	}
	if n*d >= parallelThreshold/8 && n > 2*parallelChunk {
		chunks := (n + parallelChunk - 1) / parallelChunk
		partials := make([][]float64, chunks)
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		if workers > chunks {
			workers = chunks
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= chunks {
						return
					}
					part := make([]float64, k*d)
					lo := ci * parallelChunk
					hi := min(lo+parallelChunk, n)
					sumRange(part, lo, hi)
					partials[ci] = part
				}
			}()
		}
		wg.Wait()
		// Merge in chunk order for bit-stable floating point.
		flat := make([]float64, k*d)
		for _, part := range partials {
			for j, v := range part {
				flat[j] += v
			}
		}
		for c := range out {
			copy(out[c], flat[c*d:(c+1)*d])
		}
		return out
	}
	flat := make([]float64, k*d)
	sumRange(flat, 0, n)
	for c := range out {
		copy(out[c], flat[c*d:(c+1)*d])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, each next with probability proportional to the
// squared distance from the nearest chosen centroid.
func seedPlusPlus(data [][]float64, k int, rng *stats.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(data[rng.Intn(len(data))]))
	return extendPlusPlus(data, centroids, k, rng)
}

// extendPlusPlus grows an existing centroid set to k members with
// k-means++ draws.
func extendPlusPlus(data [][]float64, centroids [][]float64, k int, rng *stats.RNG) [][]float64 {
	n := len(data)
	d2 := make([]float64, n)
	for i := range d2 {
		best := math.Inf(1)
		for _, c := range centroids {
			if dist := linalg.SquaredDistance(data[i], c); dist < best {
				best = dist
			}
		}
		d2[i] = best
	}
	for len(centroids) < k {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var idx int
		if total <= 0 {
			// All remaining points coincide with a centroid; pick
			// uniformly.
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := clone(data[idx])
		centroids = append(centroids, c)
		for i := range d2 {
			if dist := linalg.SquaredDistance(data[i], c); dist < d2[i] {
				d2[i] = dist
			}
		}
	}
	return centroids
}

// equalVec reports exact element-wise equality; used by the
// empty-cluster repair to detect a reseed that made no progress.
func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Representatives returns, for each cluster, the index of the point
// closest to its centroid — the frame MEGsim actually simulates for the
// cluster (Section III-E).
func Representatives(data [][]float64, res Result) []int {
	reps := make([]int, res.K)
	best := make([]float64, res.K)
	for c := range best {
		best[c] = math.Inf(1)
		reps[c] = -1
	}
	for i, x := range data {
		c := res.Assign[i]
		if dist := linalg.SquaredDistance(x, res.Centroids[c]); dist < best[c] {
			best[c] = dist
			reps[c] = i
		}
	}
	return reps
}
