package cluster

import (
	"fmt"

	"repro/internal/xmath/stats"
)

// XMeans implements the x-means algorithm of Pelleg & Moore (the
// paper's reference [28], whose BIC formulation MEGsim adopts): start
// from kMin clusters and repeatedly bisect individual clusters, keeping
// each split only when the local BIC of the two-cluster model of that
// cluster's members beats the one-cluster model. The process stops when
// no cluster wants to split or kMax is reached, followed by a global
// Lloyd refinement.
//
// It exists as an alternative to the paper's linear k search
// (cluster.Search); the ablation benches compare the two.
func XMeans(data [][]float64, kMin, kMax int, rng *stats.RNG, maxIter int) (Result, error) {
	n := len(data)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: XMeans on empty dataset")
	}
	if kMin < 1 || kMin > n {
		return Result{}, fmt.Errorf("cluster: kMin=%d out of range [1,%d]", kMin, n)
	}
	if kMax < kMin {
		return Result{}, fmt.Errorf("cluster: kMax=%d < kMin=%d", kMax, kMin)
	}
	if kMax > n {
		kMax = n
	}

	res := KMeans(data, kMin, rng.Split(), maxIter)
	for res.K < kMax {
		type split struct {
			cluster   int
			centroids [][]float64
		}
		var accepted []split
		// Improve-structure step: try to bisect every cluster.
		for c := 0; c < res.K; c++ {
			if res.Sizes[c] < 4 {
				continue
			}
			members := make([][]float64, 0, res.Sizes[c])
			for i, a := range res.Assign {
				if a == c {
					members = append(members, data[i])
				}
			}
			parent := KMeans(members, 1, rng.Split(), maxIter)
			children := KMeans(members, 2, rng.Split(), maxIter)
			if BIC(members, children) > BIC(members, parent) {
				accepted = append(accepted, split{cluster: c, centroids: children.Centroids})
			}
		}
		if len(accepted) == 0 {
			break
		}
		// Build the next centroid set: unsplit clusters keep theirs;
		// split clusters contribute their two children (bounded by
		// kMax).
		splitSet := make(map[int][][]float64, len(accepted))
		for _, s := range accepted {
			splitSet[s.cluster] = s.centroids
		}
		var seeds [][]float64
		for c := 0; c < res.K; c++ {
			if kids, ok := splitSet[c]; ok && len(seeds)+2 <= kMax+len(splitSet) {
				seeds = append(seeds, kids...)
			} else {
				seeds = append(seeds, res.Centroids[c])
			}
		}
		if len(seeds) > kMax {
			seeds = seeds[:kMax]
		}
		next := KMeansSeeded(data, len(seeds), rng.Split(), maxIter, seeds)
		if next.K == res.K {
			break // no progress
		}
		res = next
	}
	return res, nil
}
