package cluster

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/xmath/stats"
)

// fuzzDataset decodes arbitrary bytes into a non-degenerate dataset for
// the k-means/BIC pipeline. The first byte picks the dimensionality
// (1..4) and a duplication factor (adversarially duplicate-heavy inputs
// are a known k-means failure mode); the rest is consumed 8 bytes at a
// time as float64 coordinates, with NaN/Inf filtered to large-but-finite
// values and magnitudes clamped so WCSS arithmetic stays in range.
func fuzzDataset(raw []byte) [][]float64 {
	if len(raw) < 9 {
		return nil
	}
	dim := int(raw[0]&0x03) + 1
	dupes := int(raw[0]>>2&0x07) + 1
	raw = raw[1:]

	const clamp = 1e6
	const maxPoints = 512 // keep a single exec fast under -fuzztime smoke runs
	var data [][]float64
	for len(raw) >= 8*dim && len(data) < maxPoints {
		vec := make([]float64, dim)
		for d := 0; d < dim; d++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*d:]))
			switch {
			case math.IsNaN(v):
				v = clamp
			case v > clamp || math.IsInf(v, 1):
				v = clamp
			case v < -clamp || math.IsInf(v, -1):
				v = -clamp
			}
			vec[d] = v
		}
		raw = raw[8*dim:]
		for i := 0; i < dupes; i++ {
			data = append(data, vec)
		}
	}
	return data
}

// FuzzSearch throws adversarial datasets — NaN/Inf bit patterns,
// duplicate-heavy point sets, single points — at the full BIC
// cluster-count search and checks the structural invariants every
// clustering must satisfy. Any panic (empty cluster, NaN centroid,
// division by zero variance) is a finding.
func FuzzSearch(f *testing.F) {
	// Single point.
	one := []byte{0x00}
	one = binary.LittleEndian.AppendUint64(one, math.Float64bits(1.5))
	f.Add(one, uint64(1))

	// NaN and +/-Inf coordinates (filtered by the harness, but the bit
	// patterns steer the corpus toward float edge cases).
	special := []byte{0x01}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0} {
		special = binary.LittleEndian.AppendUint64(special, math.Float64bits(v))
	}
	f.Add(special, uint64(7))

	// Duplicate-heavy: every point repeated 8 times (dupes field = 7).
	dupes := []byte{0x1C}
	for _, v := range []float64{0, 0, 1, 1, 5, 5} {
		dupes = binary.LittleEndian.AppendUint64(dupes, math.Float64bits(v))
	}
	f.Add(dupes, uint64(3))

	// Two well-separated 2D blobs — the easy case, as a baseline seed.
	blobs := []byte{0x01}
	for _, v := range []float64{0, 0, 0.1, 0.1, 10, 10, 10.1, 10.1} {
		blobs = binary.LittleEndian.AppendUint64(blobs, math.Float64bits(v))
	}
	f.Add(blobs, uint64(42))

	// Denormals and huge magnitudes (clamped by the harness).
	extremes := []byte{0x05}
	for _, v := range []float64{5e-324, math.MaxFloat64, -math.MaxFloat64, 1e-300} {
		extremes = binary.LittleEndian.AppendUint64(extremes, math.Float64bits(v))
	}
	f.Add(extremes, uint64(9))

	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		data := fuzzDataset(raw)
		if len(data) == 0 {
			t.Skip()
		}
		// Cap the search so pathological inputs stay fast.
		cfg := SearchConfig{Threshold: 0.85, MaxK: 8, MaxIterations: 30, Restarts: 1, Patience: 1}
		res, err := Search(data, cfg, stats.NewRNG(seed))
		if err != nil {
			t.Fatalf("Search on %d valid points: %v", len(data), err)
		}
		checkClustering(t, res.Best, data)
		if res.StoppedAt < res.Best.K {
			t.Fatalf("StoppedAt %d < selected K %d", res.StoppedAt, res.Best.K)
		}
		if len(res.Scores) != res.StoppedAt {
			t.Fatalf("explored %d scores but StoppedAt = %d", len(res.Scores), res.StoppedAt)
		}
		for k, s := range res.Scores {
			if math.IsNaN(s) {
				t.Fatalf("BIC score for k=%d is NaN", k+1)
			}
		}
	})
}

// checkClustering asserts the structural invariants of a Result.
func checkClustering(t *testing.T, res Result, data [][]float64) {
	t.Helper()
	n := len(data)
	if res.K < 1 || res.K > n {
		t.Fatalf("K = %d out of [1,%d]", res.K, n)
	}
	if len(res.Assign) != n {
		t.Fatalf("len(Assign) = %d, want %d", len(res.Assign), n)
	}
	if len(res.Centroids) != res.K || len(res.Sizes) != res.K {
		t.Fatalf("K=%d but %d centroids, %d sizes", res.K, len(res.Centroids), len(res.Sizes))
	}
	counted := make([]int, res.K)
	for i, a := range res.Assign {
		if a < 0 || a >= res.K {
			t.Fatalf("point %d assigned to cluster %d of %d", i, a, res.K)
		}
		counted[a]++
	}
	total := 0
	for k, size := range res.Sizes {
		if size != counted[k] {
			t.Fatalf("cluster %d: Sizes=%d but %d assigned", k, size, counted[k])
		}
		total += size
	}
	if total != n {
		t.Fatalf("sizes sum to %d, want %d", total, n)
	}
	for k, c := range res.Centroids {
		for d, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("centroid %d dim %d is %v", k, d, v)
			}
		}
	}
	if math.IsNaN(res.WCSS) || math.IsInf(res.WCSS, 0) || res.WCSS < 0 {
		t.Fatalf("WCSS = %v", res.WCSS)
	}
}
