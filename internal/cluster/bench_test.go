package cluster

import (
	"testing"

	"repro/internal/xmath/stats"
)

func benchData(n, d int) [][]float64 {
	rng := stats.NewRNG(42)
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, d)
		center := float64(i % 5 * 20)
		for j := range data[i] {
			data[i][j] = center + rng.Norm(0, 1)
		}
	}
	return data
}

func BenchmarkKMeans(b *testing.B) {
	data := benchData(1000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(data, 8, stats.NewRNG(uint64(i)+1), 0)
	}
}

func BenchmarkKMeansSeededWarmStart(b *testing.B) {
	data := benchData(1000, 32)
	base := KMeans(data, 7, stats.NewRNG(1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeansSeeded(data, 8, stats.NewRNG(uint64(i)+1), 0, base.Centroids)
	}
}

func BenchmarkBIC(b *testing.B) {
	data := benchData(1000, 32)
	res := KMeans(data, 8, stats.NewRNG(1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BIC(data, res)
	}
}

func BenchmarkSearch(b *testing.B) {
	data := benchData(500, 16)
	cfg := DefaultSearchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(data, cfg, stats.NewRNG(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
