package core

import (
	"math"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/shader"
	"repro/internal/tbr"
	"repro/internal/tbr/mem"
	"repro/internal/xmath/stats"
)

// syntheticResult builds a funcsim.Result with controlled structure:
// `phases` blocks of `perPhase` frames; frames within a block share a
// shader usage pattern (plus slight ramp), blocks differ strongly.
func syntheticResult(phases, perPhase, numVS, numFS int) *funcsim.Result {
	res := &funcsim.Result{Trace: "synthetic"}
	for i := 0; i < numVS; i++ {
		res.VSStatic = append(res.VSStatic, shader.Cost{Instructions: 10 + i, ALUOps: 10 + i})
	}
	for i := 0; i < numFS; i++ {
		res.FSStatic = append(res.FSStatic, shader.Cost{
			Instructions: 20 + i, ALUOps: 17 + i, TexSamples: 3, TexMemAccesses: 12,
		})
	}
	frame := 0
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < perPhase; i++ {
			p := funcsim.FrameProfile{
				Frame:   frame,
				VSCount: make([]uint64, numVS),
				FSCount: make([]uint64, numFS),
			}
			// Each phase drives a distinct pair of shaders.
			p.VSCount[ph%numVS] = uint64(1000*(ph+1) + i)
			p.FSCount[ph%numFS] = uint64(5000*(ph+1) + 10*i)
			p.PrimsIn = uint64(300*(ph+1) + i)
			p.PrimsVisible = uint64(250*(ph+1) + i)
			p.Fragments = p.FSCount[ph%numFS]
			res.Profiles = append(res.Profiles, p)
			frame++
		}
	}
	return res
}

func TestBuildFeaturesShape(t *testing.T) {
	res := syntheticResult(3, 20, 4, 5)
	fs, err := BuildFeatures(res, DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Vectors) != 60 {
		t.Fatalf("rows = %d", len(fs.Vectors))
	}
	if fs.Dims() != 4+5+1 {
		t.Fatalf("dims = %d", fs.Dims())
	}
	if !fs.HasPrim {
		t.Fatal("PRIM missing")
	}
}

func TestBuildFeaturesGroupWeighting(t *testing.T) {
	res := syntheticResult(2, 10, 3, 3)
	fs, err := BuildFeatures(res, DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Group sums over the whole matrix must be in phase-weight ratio
	// (each group normalizes to weight * N).
	var vs, fsg, prim float64
	for _, row := range fs.Vectors {
		for j := 0; j < 3; j++ {
			vs += row[j]
		}
		for j := 3; j < 6; j++ {
			fsg += row[j]
		}
		prim += row[6]
	}
	n := float64(len(fs.Vectors))
	if math.Abs(vs-0.108*n) > 1e-9 || math.Abs(fsg-0.745*n) > 1e-9 || math.Abs(prim-0.147*n) > 1e-9 {
		t.Fatalf("group masses %v/%v/%v, want %v/%v/%v", vs, fsg, prim, 0.108*n, 0.745*n, 0.147*n)
	}
}

func TestBuildFeaturesTextureWeightingMatters(t *testing.T) {
	res := syntheticResult(2, 10, 2, 2)
	on, _ := BuildFeatures(res, DefaultFeatureConfig())
	cfgOff := DefaultFeatureConfig()
	cfgOff.UseTextureWeights = false
	off, _ := BuildFeatures(res, cfgOff)
	// With weighting the FS group uses Instructions-TexSamples+TexMem =
	// 20+i-3+12 instead of 20+i; relative shader weights inside the
	// group change, so normalized vectors must differ somewhere.
	same := true
	for f := range on.Vectors {
		for j := range on.Vectors[f] {
			if math.Abs(on.Vectors[f][j]-off.Vectors[f][j]) > 1e-12 {
				same = false
			}
		}
	}
	if same {
		t.Fatal("texture weighting changed nothing")
	}
}

func TestBuildFeaturesNoPrim(t *testing.T) {
	res := syntheticResult(2, 5, 2, 2)
	cfg := DefaultFeatureConfig()
	cfg.IncludePrim = false
	fs, err := BuildFeatures(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Dims() != 4 || fs.HasPrim {
		t.Fatalf("dims = %d, HasPrim = %v", fs.Dims(), fs.HasPrim)
	}
}

func TestBuildFeaturesEmpty(t *testing.T) {
	if _, err := BuildFeatures(&funcsim.Result{}, DefaultFeatureConfig()); err == nil {
		t.Fatal("accepted empty result")
	}
}

func TestSelectFindsPhaseClusters(t *testing.T) {
	res := syntheticResult(4, 50, 4, 6)
	fs, err := BuildFeatures(res, DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Clusters.K < 4 || sel.Clusters.K > 20 {
		t.Fatalf("k = %d for 4 planted phases", sel.Clusters.K)
	}
	if sel.NumRepresentatives() != sel.Clusters.K {
		t.Fatal("one representative per cluster expected")
	}
	if rf := sel.ReductionFactor(); rf < 10 {
		t.Fatalf("reduction factor %v too small", rf)
	}
	// Clusters may split a phase's internal ramp into sub-clusters, but
	// must never MIX frames of different planted phases: phases are far
	// apart compared to within-phase variation.
	clusterPhase := map[int]int{}
	for f := 0; f < sel.NumFrames(); f++ {
		ph := f / 50
		c := sel.ClusterOf(f)
		if prev, ok := clusterPhase[c]; ok && prev != ph {
			t.Fatalf("cluster %d mixes phases %d and %d", c, prev, ph)
		}
		clusterPhase[c] = ph
	}
}

func TestSelectDeterministic(t *testing.T) {
	res := syntheticResult(3, 30, 3, 3)
	fs, _ := BuildFeatures(res, DefaultFeatureConfig())
	a, err := Select(fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Clusters.K != b.Clusters.K {
		t.Fatal("selection not deterministic")
	}
	for i := range a.Representatives {
		if a.Representatives[i] != b.Representatives[i] {
			t.Fatal("representatives not deterministic")
		}
	}
}

func TestEstimateScalesByClusterSizes(t *testing.T) {
	res := syntheticResult(2, 10, 2, 2)
	fs, _ := BuildFeatures(res, DefaultFeatureConfig())
	sel, err := Select(fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repStats := map[int]tbr.FrameStats{}
	for _, r := range sel.Representatives {
		repStats[r] = tbr.FrameStats{Frame: r, Cycles: 100, DRAM: dramStats(7)}
	}
	est, err := sel.Estimate(repStats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != 100*uint64(sel.NumFrames()) {
		t.Fatalf("estimated cycles = %d, want %d", est.Cycles, 100*sel.NumFrames())
	}
	if est.DRAM.Accesses != 7*uint64(sel.NumFrames()) {
		t.Fatalf("estimated DRAM = %d", est.DRAM.Accesses)
	}
}

func TestEstimateMissingRepresentative(t *testing.T) {
	res := syntheticResult(2, 10, 2, 2)
	fs, _ := BuildFeatures(res, DefaultFeatureConfig())
	sel, _ := Select(fs, DefaultConfig())
	if _, err := sel.Estimate(map[int]tbr.FrameStats{}); err == nil {
		t.Fatal("accepted missing representative stats")
	}
}

func TestEstimateFromFullRunPerfectOnConstantFrames(t *testing.T) {
	// If every frame in a cluster is identical, the estimate is exact.
	res := syntheticResult(3, 20, 3, 3)
	// Flatten the within-phase ramps so frames repeat exactly.
	for i := range res.Profiles {
		ph := i / 20
		res.Profiles[i].VSCount[ph%3] = uint64(1000 * (ph + 1))
		res.Profiles[i].FSCount[ph%3] = uint64(5000 * (ph + 1))
		res.Profiles[i].PrimsIn = uint64(300 * (ph + 1))
		res.Profiles[i].PrimsVisible = uint64(250 * (ph + 1))
	}
	fs, _ := BuildFeatures(res, DefaultFeatureConfig())
	sel, err := Select(fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := make([]tbr.FrameStats, 60)
	for i := range full {
		ph := i / 20
		full[i] = tbr.FrameStats{Frame: i, Cycles: uint64(1000 * (ph + 1)), DRAM: dramStats(uint64(10 * (ph + 1)))}
	}
	est, err := sel.EstimateFromFullRun(full)
	if err != nil {
		t.Fatal(err)
	}
	actual := SumStats(full)
	acc := EvaluateAccuracy(&est, &actual)
	if acc[MetricCycles] > 1e-12 || acc[MetricDRAM] > 1e-12 {
		t.Fatalf("expected exact estimate, got %v", acc)
	}
}

func TestAccuracyMetrics(t *testing.T) {
	est := tbr.FrameStats{Cycles: 101, DRAM: dramStats(99)}
	act := tbr.FrameStats{Cycles: 100, DRAM: dramStats(100)}
	acc := EvaluateAccuracy(&est, &act)
	if math.Abs(acc[MetricCycles]-0.01) > 1e-12 {
		t.Fatalf("cycles error = %v", acc[MetricCycles])
	}
	if math.Abs(acc.Percent(MetricDRAM)-1) > 1e-9 {
		t.Fatalf("dram error %% = %v", acc.Percent(MetricDRAM))
	}
	if MetricCycles.String() != "cycles" || len(Metrics()) != int(NumMetrics) {
		t.Fatal("metric metadata wrong")
	}
}

func TestCorrelationStudyDetectsDrivers(t *testing.T) {
	res := syntheticResult(4, 40, 4, 4)
	// Target strongly driven by the FS counts.
	target := make([]float64, len(res.Profiles))
	for i := range res.Profiles {
		var fsum float64
		for s, c := range res.Profiles[i].FSCount {
			fsum += float64(c) * float64(res.FSStatic[s].Instructions)
		}
		target[i] = 2*fsum + 1000
	}
	corr, err := CorrelationStudy(res, target)
	if err != nil {
		t.Fatal(err)
	}
	if corr.FSCV < 0.99 {
		t.Fatalf("FSCV correlation = %v, want ~1 (target is a linear function of it)", corr.FSCV)
	}
	if corr.VSCV < 0 || corr.VSCV > 1 || math.Abs(corr.Prim) > 1 {
		t.Fatalf("correlations out of range: %+v", corr)
	}
}

func TestCorrelationStudyValidation(t *testing.T) {
	res := syntheticResult(2, 10, 2, 2)
	if _, err := CorrelationStudy(res, []float64{1, 2}); err == nil {
		t.Fatal("accepted mismatched target length")
	}
}

func TestRandomSubsamplePartition(t *testing.T) {
	rng := stats.NewRNG(5)
	segs, err := RandomSubsample(100, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range segs {
		if s.Size <= 0 {
			t.Fatalf("segment %d empty", i)
		}
		lo := i * 100 / 7
		hi := (i + 1) * 100 / 7
		if s.Rep < lo || s.Rep >= hi {
			t.Fatalf("segment %d rep %d outside [%d,%d)", i, s.Rep, lo, hi)
		}
		total += s.Size
	}
	if total != 100 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestRandomSubsampleValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, bad := range [][2]int{{0, 1}, {10, 0}, {5, 6}} {
		if _, err := RandomSubsample(bad[0], bad[1], rng); err == nil {
			t.Fatalf("accepted n=%d k=%d", bad[0], bad[1])
		}
	}
}

func TestSubsampleEstimateExactWhenFullSampling(t *testing.T) {
	perFrame := []float64{5, 7, 9, 11}
	segs, _ := RandomSubsample(4, 4, stats.NewRNG(1))
	if got := SubsampleEstimate(perFrame, segs); got != 32 {
		t.Fatalf("full sampling estimate = %v, want 32", got)
	}
}

func TestSubsampleMaxErrorDecreasesWithK(t *testing.T) {
	rng := stats.NewRNG(9)
	perFrame := make([]float64, 500)
	for i := range perFrame {
		perFrame[i] = 1000 + 200*math.Sin(float64(i)/30) + rng.Norm(0, 50)
	}
	small, err := SubsampleMaxError(perFrame, 5, 300, 0.95, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	large, err := SubsampleMaxError(perFrame, 100, 300, 0.95, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("error did not shrink: k=5 -> %v, k=100 -> %v", small, large)
	}
}

func TestFramesNeededSanity(t *testing.T) {
	rng := stats.NewRNG(13)
	perFrame := make([]float64, 400)
	for i := range perFrame {
		perFrame[i] = 1000 + rng.Norm(0, 300)
	}
	k, err := FramesNeeded(perFrame, 0.02, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > 400 {
		t.Fatalf("frames needed = %d", k)
	}
	// A looser target can only need fewer or equal frames.
	k2, err := FramesNeeded(perFrame, 0.2, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k2 > k {
		t.Fatalf("looser target needs more frames: %d vs %d", k2, k)
	}
}

func TestFramesNeededImpossibleTarget(t *testing.T) {
	rng := stats.NewRNG(17)
	perFrame := make([]float64, 50)
	for i := range perFrame {
		perFrame[i] = rng.Range(0, 1000) // wild variance
	}
	k, err := FramesNeeded(perFrame, 0, 100, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 50 {
		t.Fatalf("zero-error target should need all frames, got %d", k)
	}
}

func dramStats(accesses uint64) mem.DRAMStats {
	return mem.DRAMStats{Accesses: accesses}
}

func TestPeriodicSamplePartition(t *testing.T) {
	segs, err := PeriodicSample(100, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range segs {
		lo := i * 100 / 7
		hi := (i + 1) * 100 / 7
		if s.Rep < lo || s.Rep >= hi {
			t.Fatalf("segment %d rep %d outside [%d,%d)", i, s.Rep, lo, hi)
		}
		total += s.Size
	}
	if total != 100 {
		t.Fatalf("sizes sum to %d", total)
	}
	// Deterministic for the same offset, different for another offset.
	again, _ := PeriodicSample(100, 7, 3)
	for i := range segs {
		if segs[i] != again[i] {
			t.Fatal("PeriodicSample not deterministic")
		}
	}
	other, _ := PeriodicSample(100, 7, 9)
	same := true
	for i := range segs {
		if segs[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("offset had no effect")
	}
}

func TestPeriodicSampleValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {10, 0}, {5, 6}} {
		if _, err := PeriodicSample(bad[0], bad[1], 0); err == nil {
			t.Fatalf("accepted n=%d k=%d", bad[0], bad[1])
		}
	}
}

func TestPeriodicMaxErrorDecreasesWithK(t *testing.T) {
	rng := stats.NewRNG(21)
	perFrame := make([]float64, 600)
	for i := range perFrame {
		perFrame[i] = 1000 + 300*math.Sin(float64(i)/40) + rng.Norm(0, 30)
	}
	small, err := PeriodicMaxError(perFrame, 4, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	large, err := PeriodicMaxError(perFrame, 120, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("periodic error did not shrink: k=4 -> %v, k=120 -> %v", small, large)
	}
}

func TestPeriodicFullSamplingExact(t *testing.T) {
	perFrame := []float64{5, 7, 9, 11}
	e, err := PeriodicMaxError(perFrame, 4, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("full periodic sampling error = %v, want 0", e)
	}
}
