package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/xmath/stats"
)

// Config is the complete MEGsim configuration.
type Config struct {
	// Feature controls vector-of-characteristics construction.
	Feature FeatureConfig
	// Search controls the k-means/BIC cluster-count search.
	Search cluster.SearchConfig
	// Seed drives k-means initialization.
	Seed uint64
}

// DefaultConfig returns the paper's settings (T = 0.85, paper phase
// weights, texture weighting on, PRIM on).
func DefaultConfig() Config {
	return Config{
		Feature: DefaultFeatureConfig(),
		Search:  cluster.DefaultSearchConfig(),
		Seed:    1,
	}
}

// Selection is MEGsim's output: the chosen clustering and the
// representative frame of each cluster.
type Selection struct {
	// Features is the characterization matrix the clustering ran on.
	Features *FeatureSet
	// Clusters is the chosen clustering.
	Clusters cluster.Result
	// Representatives[c] is the frame index simulated for cluster c
	// (the member closest to the centroid).
	Representatives []int
	// BICScores[i] is the score of k = i+1 during the search.
	BICScores []float64
}

// NumFrames returns the sequence length.
func (s *Selection) NumFrames() int { return len(s.Clusters.Assign) }

// NumRepresentatives returns how many frames must be simulated.
func (s *Selection) NumRepresentatives() int { return len(s.Representatives) }

// ReductionFactor returns frames / representatives — the Table III
// metric.
func (s *Selection) ReductionFactor() float64 {
	if s.NumRepresentatives() == 0 {
		return 0
	}
	return float64(s.NumFrames()) / float64(s.NumRepresentatives())
}

// ClusterOf returns the cluster index of a frame.
func (s *Selection) ClusterOf(frame int) int { return s.Clusters.Assign[frame] }

// Select runs the MEGsim frame-selection pipeline on a feature set:
// k-means with BIC-scored cluster-count search, then representative
// extraction.
func Select(fs *FeatureSet, cfg Config) (*Selection, error) {
	if fs == nil || len(fs.Vectors) == 0 {
		return nil, fmt.Errorf("core: empty feature set")
	}
	sr, err := cluster.Search(fs.Vectors, cfg.Search, stats.NewRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("core: cluster search: %w", err)
	}
	reps := cluster.Representatives(fs.Vectors, sr.Best)
	for c, r := range reps {
		if r < 0 {
			return nil, fmt.Errorf("core: cluster %d has no representative", c)
		}
	}
	return &Selection{
		Features:        fs,
		Clusters:        sr.Best,
		Representatives: reps,
		BICScores:       sr.Scores,
	}, nil
}
