package core

import (
	"fmt"

	"repro/internal/tbr"
	"repro/internal/xmath/stats"
)

// Estimate extrapolates full-sequence statistics from simulated
// representatives: each representative's statistics are scaled by its
// cluster's size and summed (Section III-E).
func (s *Selection) Estimate(repStats map[int]tbr.FrameStats) (tbr.FrameStats, error) {
	var total tbr.FrameStats
	for c, rep := range s.Representatives {
		st, ok := repStats[rep]
		if !ok {
			return tbr.FrameStats{}, fmt.Errorf("core: missing simulated stats for representative frame %d (cluster %d)", rep, c)
		}
		scaled := st.Scale(uint64(s.Clusters.Sizes[c]))
		total.Add(&scaled)
	}
	total.Frame = -1
	return total, nil
}

// Metric identifies one of the four key performance metrics the paper
// evaluates accuracy on (Fig. 7).
type Metric int

const (
	// MetricCycles is the total number of cycles (execution time).
	MetricCycles Metric = iota
	// MetricDRAM is the number of main memory accesses.
	MetricDRAM
	// MetricL2 is the number of L2 cache accesses.
	MetricL2
	// MetricTileCache is the number of L1 (tile cache) accesses.
	MetricTileCache
	// NumMetrics is the metric count.
	NumMetrics
)

// String names the metric as the paper does.
func (m Metric) String() string {
	switch m {
	case MetricCycles:
		return "cycles"
	case MetricDRAM:
		return "dram-accesses"
	case MetricL2:
		return "l2-accesses"
	case MetricTileCache:
		return "tile-cache-accesses"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Of extracts the metric's value from frame statistics.
func (m Metric) Of(st *tbr.FrameStats) float64 {
	switch m {
	case MetricCycles:
		return float64(st.Cycles)
	case MetricDRAM:
		return float64(st.DRAM.Accesses)
	case MetricL2:
		return float64(st.L2.Accesses)
	case MetricTileCache:
		return float64(st.TileCache.Accesses)
	default:
		panic("core: unknown metric")
	}
}

// Metrics lists the four Fig. 7 metrics in paper order.
func Metrics() []Metric {
	return []Metric{MetricCycles, MetricDRAM, MetricL2, MetricTileCache}
}

// Accuracy holds per-metric relative errors (fractions, not percent).
type Accuracy [NumMetrics]float64

// Percent returns the metric's error as a percentage.
func (a Accuracy) Percent(m Metric) float64 { return a[m] * 100 }

// EvaluateAccuracy compares a MEGsim estimate against ground truth
// (the full-sequence simulation) on the four key metrics.
func EvaluateAccuracy(estimate, actual *tbr.FrameStats) Accuracy {
	var a Accuracy
	for _, m := range Metrics() {
		a[m] = stats.RelativeError(m.Of(estimate), m.Of(actual))
	}
	return a
}

// SumStats totals a full per-frame statistics slice — the ground truth
// MEGsim estimates are compared against.
func SumStats(frames []tbr.FrameStats) tbr.FrameStats {
	var total tbr.FrameStats
	for i := range frames {
		total.Add(&frames[i])
	}
	total.Frame = -1
	return total
}

// EstimateFromFullRun is a convenience for evaluation studies where the
// whole sequence has already been simulated: it extracts the
// representatives' stats from the full run and scales them, exactly as
// if only those frames had been simulated (frame isolation makes the
// two identical).
func (s *Selection) EstimateFromFullRun(full []tbr.FrameStats) (tbr.FrameStats, error) {
	if len(full) != s.NumFrames() {
		return tbr.FrameStats{}, fmt.Errorf("core: full run has %d frames, selection has %d", len(full), s.NumFrames())
	}
	rep := make(map[int]tbr.FrameStats, len(s.Representatives))
	for _, r := range s.Representatives {
		rep[r] = full[r]
	}
	return s.Estimate(rep)
}
