package core

import (
	"fmt"
	"math"

	"repro/internal/funcsim"
	"repro/internal/xmath/linalg"
	"repro/internal/xmath/stats"
)

// Correlation is the result of the Section III-B correlation study: how
// well each characterization group predicts a target simulation metric
// (the paper uses total cycles, Fig. 3).
type Correlation struct {
	// VSCV and FSCV are coefficients of multiple correlation (R, the
	// square root of Eq. 2's R^2) between the weighted shader count
	// vectors and the target.
	VSCV float64
	FSCV float64
	// Prim is the Pearson correlation between the PRIM column and the
	// target (Eq. 1; it is one-dimensional).
	Prim float64
}

// CorrelationStudy reproduces the Fig. 3 study for one benchmark: the
// per-frame target metric (typically cycles) is correlated against the
// three characterization groups built from the functional profiles.
func CorrelationStudy(res *funcsim.Result, target []float64) (Correlation, error) {
	if len(target) != len(res.Profiles) {
		return Correlation{}, fmt.Errorf("core: target has %d entries for %d frames", len(target), len(res.Profiles))
	}
	if len(target) < 3 {
		return Correlation{}, fmt.Errorf("core: need at least 3 frames for a correlation study")
	}
	// Build unweighted (but instruction- and texture-weighted) per-shader
	// columns; normalization is irrelevant to correlation coefficients.
	cfg := DefaultFeatureConfig()
	cfg.Weights = PhaseWeights{Geometry: 1, Raster: 1, Tiling: 1}
	fs, err := BuildFeatures(res, cfg)
	if err != nil {
		return Correlation{}, err
	}

	var out Correlation
	vsCols := columns(fs.Vectors, 0, fs.NumVS)
	r2, err := linalg.MultipleCorrelation(vsCols, target)
	if err != nil {
		return Correlation{}, fmt.Errorf("core: VSCV correlation: %w", err)
	}
	out.VSCV = math.Sqrt(r2)

	fsCols := columns(fs.Vectors, fs.NumVS, fs.NumVS+fs.NumFS)
	r2, err = linalg.MultipleCorrelation(fsCols, target)
	if err != nil {
		return Correlation{}, fmt.Errorf("core: FSCV correlation: %w", err)
	}
	out.FSCV = math.Sqrt(r2)

	prim := make([]float64, len(res.Profiles))
	for i := range res.Profiles {
		prim[i] = float64(res.Profiles[i].PrimsVisible)
	}
	out.Prim = stats.Pearson(prim, target)
	return out, nil
}

func columns(vectors [][]float64, lo, hi int) [][]float64 {
	cols := make([][]float64, hi-lo)
	for c := range cols {
		col := make([]float64, len(vectors))
		for f, row := range vectors {
			col[f] = row[lo+c]
		}
		cols[c] = col
	}
	return cols
}
