package core

import (
	"fmt"

	"repro/internal/xmath/stats"
)

// Segment is one range of a random sub-sampling partition: Rep is the
// randomly chosen representative frame, Size the number of frames it
// stands for.
type Segment struct {
	Rep  int
	Size int
}

// RandomSubsample implements the naive baseline of Section V-C: the N
// frames are split into k equal ranges and one representative is drawn
// uniformly from each range (so each representative stands for a fixed
// range of frames, unlike MEGsim's variable-size clusters).
func RandomSubsample(n, k int, rng *stats.RNG) ([]Segment, error) {
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("core: RandomSubsample(n=%d, k=%d) out of range", n, k)
	}
	segs := make([]Segment, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		segs[i] = Segment{Rep: lo + rng.Intn(hi-lo), Size: hi - lo}
	}
	return segs, nil
}

// SubsampleEstimate extrapolates a per-frame metric from a partition:
// each representative's value scaled by its range size.
func SubsampleEstimate(perFrame []float64, segs []Segment) float64 {
	total := 0.0
	for _, s := range segs {
		total += perFrame[s.Rep] * float64(s.Size)
	}
	return total
}

// SubsampleMaxError runs `trials` independent random sub-samplings with
// k representatives and returns the maximum relative error of the
// estimated metric total at the given confidence level (the paper uses
// 1000 trials at 95%: the worst 5% of draws are discarded).
func SubsampleMaxError(perFrame []float64, k, trials int, confidence float64, rng *stats.RNG) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("core: trials must be positive")
	}
	if confidence <= 0 || confidence > 1 {
		return 0, fmt.Errorf("core: confidence %v out of (0,1]", confidence)
	}
	actual := stats.Sum(perFrame)
	errs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		segs, err := RandomSubsample(len(perFrame), k, rng)
		if err != nil {
			return 0, err
		}
		errs[t] = stats.RelativeError(SubsampleEstimate(perFrame, segs), actual)
	}
	return stats.MaxAtConfidence(errs, confidence), nil
}

// PeriodicSample implements SMARTS-style systematic sampling (the other
// established sampling family the paper's Section II-C surveys): one
// representative every n/k frames at a fixed phase offset, each standing
// for its surrounding range. Deterministic given the offset.
func PeriodicSample(n, k, offset int) ([]Segment, error) {
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("core: PeriodicSample(n=%d, k=%d) out of range", n, k)
	}
	segs := make([]Segment, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		rep := lo + offset%(hi-lo)
		segs[i] = Segment{Rep: rep, Size: hi - lo}
	}
	return segs, nil
}

// PeriodicMaxError evaluates systematic sampling with k representatives
// across all distinct phase offsets (up to trials of them), returning
// the maximum relative error at the given confidence level — the
// systematic-sampling analogue of SubsampleMaxError.
func PeriodicMaxError(perFrame []float64, k, trials int, confidence float64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("core: trials must be positive")
	}
	if confidence <= 0 || confidence > 1 {
		return 0, fmt.Errorf("core: confidence %v out of (0,1]", confidence)
	}
	n := len(perFrame)
	if n == 0 || k <= 0 || k > n {
		return 0, fmt.Errorf("core: PeriodicMaxError(n=%d, k=%d) out of range", n, k)
	}
	period := n / k
	if period < 1 {
		period = 1
	}
	if trials > period {
		trials = period
	}
	actual := stats.Sum(perFrame)
	errs := make([]float64, 0, trials)
	for o := 0; o < trials; o++ {
		offset := o * period / trials
		segs, err := PeriodicSample(n, k, offset)
		if err != nil {
			return 0, err
		}
		errs = append(errs, stats.RelativeError(SubsampleEstimate(perFrame, segs), actual))
	}
	return stats.MaxAtConfidence(errs, confidence), nil
}

// FramesNeeded finds the smallest number of random-sub-sampling
// representatives whose confidence-bounded maximum relative error
// reaches targetErr — the Table IV comparison. The paper increases k one
// by one; since the error bound decreases (stochastically) in k, an
// exponential probe followed by binary search finds the same k several
// orders of magnitude faster. Each k is evaluated with an independent
// deterministic RNG substream so the search is reproducible.
func FramesNeeded(perFrame []float64, targetErr float64, trials int, confidence float64, seed uint64) (int, error) {
	n := len(perFrame)
	if n == 0 {
		return 0, fmt.Errorf("core: empty metric series")
	}
	if targetErr < 0 {
		return 0, fmt.Errorf("core: negative target error")
	}
	evaluate := func(k int) (float64, error) {
		return SubsampleMaxError(perFrame, k, trials, confidence, stats.NewRNG(seed^uint64(k)*0x9e3779b97f4a7c15))
	}

	// Exponential probe for an upper bound.
	hi := 1
	for hi < n {
		e, err := evaluate(hi)
		if err != nil {
			return 0, err
		}
		if e <= targetErr {
			break
		}
		hi *= 2
	}
	if hi >= n {
		// Even nearly-full sampling misses the target: everything must
		// be simulated.
		return n, nil
	}
	lo := hi/2 + 1
	if hi == 1 {
		return 1, nil
	}
	// Binary search for the smallest satisfying k in (hi/2, hi].
	for lo < hi {
		mid := (lo + hi) / 2
		e, err := evaluate(mid)
		if err != nil {
			return 0, err
		}
		if e <= targetErr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
