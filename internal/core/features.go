// Package core implements the MEGsim methodology itself — the paper's
// primary contribution (Section III): building each frame's vector of
// characteristics from functional-simulation profiles, normalizing and
// weighting its three groups by pipeline-phase activity, clustering the
// frames, selecting one representative per cluster, and estimating
// full-sequence statistics from the representatives. It also implements
// the random sub-sampling baseline of Section V-C.
package core

import (
	"fmt"

	"repro/internal/funcsim"
	"repro/internal/shader"
)

// PhaseWeights are the per-group weights of the vector of
// characteristics, proportional to the power dissipated in each pipeline
// phase (Section III-C, Fig. 4).
type PhaseWeights struct {
	// Geometry weights the VSCV group.
	Geometry float64
	// Raster weights the FSCV group.
	Raster float64
	// Tiling weights the PRIM component.
	Tiling float64
}

// PaperWeights are the measured fractions the paper reports: Geometry
// 10.8%, Raster 74.5%, Tiling 14.7%.
var PaperWeights = PhaseWeights{Geometry: 0.108, Raster: 0.745, Tiling: 0.147}

// UniformWeights weight the three groups equally (ablation baseline).
var UniformWeights = PhaseWeights{Geometry: 1.0 / 3, Raster: 1.0 / 3, Tiling: 1.0 / 3}

// FeatureConfig controls how vectors of characteristics are built.
type FeatureConfig struct {
	// Weights are the per-group phase weights.
	Weights PhaseWeights
	// UseTextureWeights applies the filter-mode memory weights (2/4/8)
	// to shader instruction counts, as Section III-B prescribes.
	// Disabling it is an ablation.
	UseTextureWeights bool
	// IncludePrim appends the PRIM component. Disabling it is an
	// ablation (it leaves the Tiling Engine uncharacterized).
	IncludePrim bool
}

// DefaultFeatureConfig returns the paper's configuration.
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{
		Weights:           PaperWeights,
		UseTextureWeights: true,
		IncludePrim:       true,
	}
}

// FeatureSet is the N x D matrix of per-frame characteristic vectors
// plus the group structure needed for reporting.
type FeatureSet struct {
	// Vectors[f] is frame f's weighted vector of characteristics.
	Vectors [][]float64
	// NumVS and NumFS are the group sizes (D = NumVS + NumFS + 0/1).
	NumVS, NumFS int
	// HasPrim records whether the PRIM column is present (the last).
	HasPrim bool
}

// Dims returns the vector length D.
func (fs *FeatureSet) Dims() int {
	d := fs.NumVS + fs.NumFS
	if fs.HasPrim {
		d++
	}
	return d
}

// BuildFeatures turns a functional-simulation result into the MEGsim
// N x D matrix of characteristics (Section III-B and III-C):
//
//   - element (f, s) of the VSCV/FSCV groups is the number of times
//     shader s executed in frame f multiplied by the shader's
//     instruction count, with texture instructions weighted by their
//     filter-mode memory accesses;
//   - the PRIM column is the frame's visible primitive count;
//   - each group is normalized by its total over the whole sequence and
//     scaled by its phase weight, so the groups contribute to Euclidean
//     distances in proportion to the activity of their pipeline phase.
func BuildFeatures(res *funcsim.Result, cfg FeatureConfig) (*FeatureSet, error) {
	if len(res.Profiles) == 0 {
		return nil, fmt.Errorf("core: no frame profiles to characterize")
	}
	numVS, numFS := len(res.VSStatic), len(res.FSStatic)
	fs := &FeatureSet{NumVS: numVS, NumFS: numFS, HasPrim: cfg.IncludePrim}
	d := fs.Dims()

	vsInstr := InstrWeights(res.VSStatic, cfg.UseTextureWeights)
	fsInstr := InstrWeights(res.FSStatic, cfg.UseTextureWeights)

	fs.Vectors = make([][]float64, len(res.Profiles))
	backing := make([]float64, len(res.Profiles)*d)
	var vsSum, fsSum, primSum float64
	for f := range res.Profiles {
		p := &res.Profiles[f]
		if len(p.VSCount) != numVS || len(p.FSCount) != numFS {
			return nil, fmt.Errorf("core: frame %d profile has wrong vector lengths", f)
		}
		row := backing[f*d : (f+1)*d]
		fs.Vectors[f] = row
		for s, cnt := range p.VSCount {
			row[s] = float64(cnt) * vsInstr[s]
			vsSum += row[s]
		}
		for s, cnt := range p.FSCount {
			row[numVS+s] = float64(cnt) * fsInstr[s]
			fsSum += row[numVS+s]
		}
		if cfg.IncludePrim {
			row[d-1] = float64(p.PrimsVisible)
			primSum += row[d-1]
		}
	}

	// Per-group normalization and phase weighting (Section III-C).
	scaleGroup(fs.Vectors, 0, numVS, cfg.Weights.Geometry, vsSum)
	scaleGroup(fs.Vectors, numVS, numVS+numFS, cfg.Weights.Raster, fsSum)
	if cfg.IncludePrim {
		scaleGroup(fs.Vectors, d-1, d, cfg.Weights.Tiling, primSum)
	}
	return fs, nil
}

// instrWeight is the characterization weight of one shader: its
// instruction count with texture instructions replaced by their
// filter-mode memory accesses when weighting is enabled.
func instrWeight(instrs, texSamples, texMem int, useTexWeights bool) float64 {
	if !useTexWeights {
		return float64(instrs)
	}
	return float64(instrs-texSamples) + float64(texMem)
}

// InstrWeights maps per-program static costs to their characterization
// weights — the Section III-B shader weighting shared by the batch
// BuildFeatures and the streaming ingestor (internal/stream), so the
// two pipelines weight shader activity identically by construction.
func InstrWeights(costs []shader.Cost, useTexWeights bool) []float64 {
	out := make([]float64, len(costs))
	for i, c := range costs {
		out[i] = instrWeight(c.Instructions, c.TexSamples, c.TexMemAccesses, useTexWeights)
	}
	return out
}

func scaleGroup(vectors [][]float64, lo, hi int, weight, groupSum float64) {
	if groupSum <= 0 {
		return
	}
	// The group's total mass over the whole sequence becomes `weight`,
	// so Euclidean distances see the groups in phase-weight proportion.
	// N keeps per-frame magnitudes comparable across sequence lengths.
	k := weight / groupSum * float64(len(vectors))
	for _, row := range vectors {
		for j := lo; j < hi; j++ {
			row[j] *= k
		}
	}
}
