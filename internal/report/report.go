// Package report renders fixed-width text tables and CSV files for the
// experiment harness — the rows/series of the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	return s
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) WriteCSV(w io.Writer) error {
	san := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = san(h)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, san(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
