package report

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// WriteObsFiles persists an observability snapshot: the metrics as JSON
// to metricsPath and the timeline as Chrome trace-format JSON to
// tracePath (either may be empty to skip it). Each file is written to a
// temporary sibling and renamed into place, so a reader never observes
// a partial file and a failed write leaves nothing behind.
func WriteObsFiles(snap *obs.Snapshot, metricsPath, tracePath string) error {
	if metricsPath != "" {
		if err := writeFileAtomic(metricsPath, snap.WriteJSON); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if tracePath != "" {
		if err := writeFileAtomic(tracePath, snap.WriteChromeTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeFileAtomic writes via a temp file + rename; on any failure the
// temp file is removed and the destination is left untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ObsCounterTable renders a snapshot's counters as a two-column table,
// sorted by metric name, so per-stage pipeline breakdowns print
// alongside the paper tables.
func ObsCounterTable(s *obs.Snapshot) *Table {
	t := NewTable("observability counters", "metric", "value")
	for _, name := range s.CounterNames() {
		t.AddRow(name, s.Counters[name])
	}
	return t
}

// ObsHistogramTable renders a snapshot's histograms (count, mean, min,
// max per metric), sorted by metric name.
func ObsHistogramTable(s *obs.Snapshot) *Table {
	t := NewTable("observability histograms", "metric", "count", "mean", "min", "max")
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		t.AddRow(name, h.Count, fmt.Sprintf("%.1f", h.Mean()), h.Min, h.Max)
	}
	return t
}
