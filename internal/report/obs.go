package report

import (
	"fmt"

	"repro/internal/obs"
)

// ObsCounterTable renders a snapshot's counters as a two-column table,
// sorted by metric name, so per-stage pipeline breakdowns print
// alongside the paper tables.
func ObsCounterTable(s *obs.Snapshot) *Table {
	t := NewTable("observability counters", "metric", "value")
	for _, name := range s.CounterNames() {
		t.AddRow(name, s.Counters[name])
	}
	return t
}

// ObsHistogramTable renders a snapshot's histograms (count, mean, min,
// max per metric), sorted by metric name.
func ObsHistogramTable(s *obs.Snapshot) *Table {
	t := NewTable("observability histograms", "metric", "count", "mean", "min", "max")
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		t.AddRow(name, h.Count, fmt.Sprintf("%.1f", h.Mean()), h.Min, h.Max)
	}
	return t
}
