package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tbl := NewTable("Title", "name", "value")
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 123456)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The value column must start at the same offset in both data rows.
	if strings.Index(lines[3], "1") < len("a-much-longer-name") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(3.14159)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.14") || strings.Contains(buf.String(), "3.14159") {
		t.Fatalf("float not trimmed: %q", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := NewTable("ignored", "a", "b")
	tbl.AddRow("x,y", 2)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "x;y,2" {
		t.Fatalf("row = %q (commas must be sanitized)", lines[1])
	}
}

func TestNumRows(t *testing.T) {
	tbl := NewTable("", "a")
	if tbl.NumRows() != 0 {
		t.Fatal("new table not empty")
	}
	tbl.AddRow(1)
	tbl.AddRow(2)
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}
