// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of MEGsim's design choices. Each benchmark
// reports the experiment's headline numbers as custom metrics
// (reduction factor, relative error, correlation), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's results. The full-resolution experiment run
// (all tables at Table II frame counts) is cmd/experiments; the bench
// suite uses shortened sequences so the whole suite completes in
// minutes. Expensive artifacts (traces, full simulations) are computed
// once and shared across benchmarks via a process-wide study cache.
package repro

import (
	"io"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/simmatrix"
	"repro/internal/tbr"
	"repro/internal/workload"
	"repro/internal/xmath/stats"
)

// benchScale shortens the Table II sequences 8x so the full suite runs
// in minutes while preserving the per-frame structure.
var benchScale = workload.Scale{Width: 256, Height: 128, FrameDivisor: 8, DetailDivisor: 1}

var (
	studyOnce sync.Once
	studyInst *harness.Study
)

// benchStudy returns the shared, lazily populated study.
func benchStudy(b *testing.B) *harness.Study {
	b.Helper()
	studyOnce.Do(func() {
		opts := harness.DefaultOptions()
		opts.Scale = benchScale
		studyInst = harness.NewStudy(opts)
	})
	return studyInst
}

func benchResult(b *testing.B, alias string) *harness.BenchmarkResult {
	b.Helper()
	r, err := benchStudy(b).Result(alias)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTableI_ConfigSim simulates one gameplay frame under the exact
// Table I configuration — the sanity baseline for the GPU model.
func BenchmarkTableI_ConfigSim(b *testing.B) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], benchScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		b.Fatal(err)
	}
	frame := tr.NumFrames() / 2
	var st tbr.FrameStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = sim.SimulateFrame(frame)
	}
	b.ReportMetric(float64(st.Cycles), "cycles/frame")
	b.ReportMetric(st.IPC(), "ipc")
}

// BenchmarkTableII_Characterize measures the functional characterization
// pass (the cheap first step of MEGsim) per benchmark.
func BenchmarkTableII_Characterize(b *testing.B) {
	for _, alias := range workload.Aliases() {
		b.Run(alias, func(b *testing.B) {
			tr := workload.MustGenerate(workload.Profiles[alias], benchScale)
			b.ResetTimer()
			var res *funcsim.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = funcsim.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.NumFrames())/b.Elapsed().Seconds()*float64(b.N), "frames/s")
			_ = res
		})
	}
}

// BenchmarkTableIII_Reduction regenerates the Table III reduction
// factors (clustering on cached characterizations).
func BenchmarkTableIII_Reduction(b *testing.B) {
	study := benchStudy(b)
	for _, alias := range workload.Aliases() {
		benchResult(b, alias) // populate cache outside the timer
	}
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		tbl, err := study.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() != len(workload.Aliases())+1 {
			b.Fatal("incomplete table")
		}
	}
	b.StopTimer()
	for _, alias := range workload.Aliases() {
		avg += benchResult(b, alias).SpeedupFrames()
	}
	b.ReportMetric(avg/float64(len(workload.Aliases())), "avg-reduction-x")
}

// BenchmarkFig3_Correlation regenerates the correlation study.
func BenchmarkFig3_Correlation(b *testing.B) {
	r := benchResult(b, "bbr1")
	cycles := make([]float64, len(r.Full))
	for i := range r.Full {
		cycles[i] = float64(r.Full[i].Cycles)
	}
	b.ResetTimer()
	var corr core.Correlation
	for i := 0; i < b.N; i++ {
		var err error
		corr, err = core.CorrelationStudy(r.Func, cycles)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corr.VSCV, "corr-vscv")
	b.ReportMetric(corr.FSCV, "corr-fscv")
	b.ReportMetric(corr.Prim, "corr-prim")
}

// BenchmarkFig4_PowerFractions regenerates the per-phase power split.
func BenchmarkFig4_PowerFractions(b *testing.B) {
	r := benchResult(b, "asp")
	model := power.DefaultEnergyModel()
	b.ResetTimer()
	var bd power.Breakdown
	for i := 0; i < b.N; i++ {
		bd = model.SequenceEnergy(r.Full)
	}
	g, ti, ra := bd.Fractions()
	b.ReportMetric(g*100, "geometry-%")
	b.ReportMetric(ti*100, "tiling-%")
	b.ReportMetric(ra*100, "raster-%")
}

// BenchmarkFig5_SimilarityMatrix builds the Fig. 5 matrix for bbr1.
func BenchmarkFig5_SimilarityMatrix(b *testing.B) {
	r := benchResult(b, "bbr1")
	vecs := r.Features.Vectors
	if len(vecs) > 300 {
		vecs = vecs[:300]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := simmatrix.New(vecs)
		if err := m.WritePGM(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_Clusters runs the full cluster search on bbr1's cached
// feature matrix (the Fig. 6 clustering).
func BenchmarkFig6_Clusters(b *testing.B) {
	r := benchResult(b, "bbr1")
	cfg := cluster.DefaultSearchConfig()
	rng := stats.NewRNG(7)
	b.ResetTimer()
	var k int
	for i := 0; i < b.N; i++ {
		sr, err := cluster.Search(r.Features.Vectors, cfg, rng.Split())
		if err != nil {
			b.Fatal(err)
		}
		k = sr.Best.K
	}
	b.ReportMetric(float64(k), "clusters")
}

// BenchmarkFig7_Accuracy regenerates the accuracy study from cached
// simulations and reports the average cycles error.
func BenchmarkFig7_Accuracy(b *testing.B) {
	study := benchStudy(b)
	for _, alias := range workload.Aliases() {
		benchResult(b, alias)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var avg float64
	for _, alias := range workload.Aliases() {
		avg += benchResult(b, alias).Accuracy.Percent(core.MetricCycles)
	}
	b.ReportMetric(avg/float64(len(workload.Aliases())), "avg-cycles-err-%")
}

// BenchmarkTableIV_RandomSubsampling regenerates the random
// sub-sampling comparison for one benchmark.
func BenchmarkTableIV_RandomSubsampling(b *testing.B) {
	r := benchResult(b, "jjo")
	cycles := make([]float64, len(r.Full))
	for i := range r.Full {
		cycles[i] = float64(r.Full[i].Cycles)
	}
	// MEGsim's own achieved error is the target random must match.
	actual := stats.Sum(cycles)
	est := 0.0
	for c, rep := range r.Selection.Representatives {
		est += cycles[rep] * float64(r.Selection.Clusters.Sizes[c])
	}
	target := stats.RelativeError(est, actual)
	if target <= 0 {
		target = 0.001
	}
	b.ResetTimer()
	var need int
	for i := 0; i < b.N; i++ {
		var err error
		need, err = core.FramesNeeded(cycles, target, 200, 0.95, 17)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(need), "random-frames")
	b.ReportMetric(float64(r.Selection.NumRepresentatives()), "megsim-frames")
	b.ReportMetric(float64(need)/float64(r.Selection.NumRepresentatives()), "reduction-x")
}

// ablationAccuracy reruns selection+estimation on a cached benchmark
// with a modified MEGsim configuration, reporting the cycles error and
// representative count.
func ablationAccuracy(b *testing.B, alias string, mutate func(*core.Config)) (errPct, reps float64) {
	b.Helper()
	r := benchResult(b, alias)
	cfg := core.DefaultConfig()
	mutate(&cfg)
	fs, err := core.BuildFeatures(r.Func, cfg.Feature)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := core.Select(fs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	est, err := sel.EstimateFromFullRun(r.Full)
	if err != nil {
		b.Fatal(err)
	}
	acc := core.EvaluateAccuracy(&est, &r.FullTotals)
	return acc.Percent(core.MetricCycles), float64(sel.NumRepresentatives())
}

// BenchmarkAblation_UniformWeights replaces the measured phase weights
// (0.108/0.745/0.147) with uniform ones.
func BenchmarkAblation_UniformWeights(b *testing.B) {
	var errPct, reps float64
	for i := 0; i < b.N; i++ {
		errPct, reps = ablationAccuracy(b, "bbr1", func(c *core.Config) {
			c.Feature.Weights = core.UniformWeights
		})
	}
	b.ReportMetric(errPct, "cycles-err-%")
	b.ReportMetric(reps, "frames")
}

// BenchmarkAblation_NoTexWeights disables the texture-filter memory
// weighting (2/4/8) of shader instruction counts.
func BenchmarkAblation_NoTexWeights(b *testing.B) {
	var errPct, reps float64
	for i := 0; i < b.N; i++ {
		errPct, reps = ablationAccuracy(b, "bbr1", func(c *core.Config) {
			c.Feature.UseTextureWeights = false
		})
	}
	b.ReportMetric(errPct, "cycles-err-%")
	b.ReportMetric(reps, "frames")
}

// BenchmarkAblation_NoPrim drops the PRIM component, leaving the Tiling
// Engine uncharacterized.
func BenchmarkAblation_NoPrim(b *testing.B) {
	var errPct, reps float64
	for i := 0; i < b.N; i++ {
		errPct, reps = ablationAccuracy(b, "bbr1", func(c *core.Config) {
			c.Feature.IncludePrim = false
		})
	}
	b.ReportMetric(errPct, "cycles-err-%")
	b.ReportMetric(reps, "frames")
}

// BenchmarkAblation_ThresholdT sweeps the BIC spread threshold.
func BenchmarkAblation_ThresholdT(b *testing.B) {
	for _, t := range []float64{0.70, 0.85, 0.95} {
		name := map[float64]string{0.70: "T070", 0.85: "T085", 0.95: "T095"}[t]
		b.Run(name, func(b *testing.B) {
			var errPct, reps float64
			for i := 0; i < b.N; i++ {
				errPct, reps = ablationAccuracy(b, "bbr1", func(c *core.Config) {
					c.Search.Threshold = t
				})
			}
			b.ReportMetric(errPct, "cycles-err-%")
			b.ReportMetric(reps, "frames")
		})
	}
}

// BenchmarkAblation_KMeansInit compares k-means++ seeding against plain
// random seeding at the chosen k.
func BenchmarkAblation_KMeansInit(b *testing.B) {
	r := benchResult(b, "bbr1")
	k := r.Selection.Clusters.K
	data := r.Features.Vectors

	b.Run("kmeans++", func(b *testing.B) {
		var wcss float64
		for i := 0; i < b.N; i++ {
			res := cluster.KMeans(data, k, stats.NewRNG(uint64(i)+1), 0)
			wcss = res.WCSS
		}
		b.ReportMetric(wcss, "wcss")
	})
	b.Run("random-seed", func(b *testing.B) {
		var wcss float64
		for i := 0; i < b.N; i++ {
			// Plain random seeding: k distinct points drawn uniformly.
			rng := stats.NewRNG(uint64(i) + 1)
			idx := rng.Sample(len(data), k)
			seeds := make([][]float64, k)
			for j, id := range idx {
				seeds[j] = data[id]
			}
			res := cluster.KMeansSeeded(data, k, rng, 0, seeds)
			wcss = res.WCSS
		}
		b.ReportMetric(wcss, "wcss")
	})
}

// BenchmarkSimulateFrame measures raw cycle-simulator throughput per
// benchmark type (2D vs 3D frame).
func BenchmarkSimulateFrame(b *testing.B) {
	for _, alias := range []string{"hcr", "asp"} {
		b.Run(alias, func(b *testing.B) {
			tr := workload.MustGenerate(workload.Profiles[alias], benchScale)
			sim, err := tbr.New(tbr.DefaultConfig(), tr)
			if err != nil {
				b.Fatal(err)
			}
			frame := tr.NumFrames() / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.SimulateFrame(frame)
			}
		})
	}
}

// BenchmarkExtension_TBDR compares the classic TBR pipeline against the
// TBDR/Hidden-Surface-Removal extension the paper suggests for newer
// GPUs (Section IV-A): same workload, shaded fragments and cycles under
// both architectures.
func BenchmarkExtension_TBDR(b *testing.B) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], benchScale)
	frame := tr.NumFrames() / 2
	for _, mode := range []struct {
		name     string
		deferred bool
	}{{"TBR", false}, {"TBDR", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := tbr.DefaultConfig()
			cfg.DeferredShading = mode.deferred
			sim, err := tbr.New(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			var st tbr.FrameStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = sim.SimulateFrame(frame)
			}
			b.ReportMetric(float64(st.FragmentsShaded), "fragments-shaded")
			b.ReportMetric(float64(st.Cycles), "cycles")
		})
	}
}

// BenchmarkBaseline_SamplingComparison compares the three sampling
// families the paper discusses on one benchmark: MEGsim's targeted
// clustering, SMARTS-style periodic sampling, and naive random
// sub-sampling, all at MEGsim's frame budget.
func BenchmarkBaseline_SamplingComparison(b *testing.B) {
	r := benchResult(b, "pvz")
	cycles := make([]float64, len(r.Full))
	for i := range r.Full {
		cycles[i] = float64(r.Full[i].Cycles)
	}
	actual := stats.Sum(cycles)
	k := r.Selection.NumRepresentatives()

	megsimEst := 0.0
	for c, rep := range r.Selection.Representatives {
		megsimEst += cycles[rep] * float64(r.Selection.Clusters.Sizes[c])
	}
	var randomErr, periodicErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		randomErr, err = core.SubsampleMaxError(cycles, k, 200, 0.95, stats.NewRNG(5))
		if err != nil {
			b.Fatal(err)
		}
		periodicErr, err = core.PeriodicMaxError(cycles, k, 50, 0.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.RelativeError(megsimEst, actual)*100, "megsim-err-%")
	b.ReportMetric(periodicErr*100, "periodic-err-%")
	b.ReportMetric(randomErr*100, "random-err-%")
}

// BenchmarkAblation_WardVsKMeans compares the paper's k-means choice
// against deterministic Ward agglomerative clustering at the same k on
// a real feature matrix.
func BenchmarkAblation_WardVsKMeans(b *testing.B) {
	r := benchResult(b, "bbr1")
	data := r.Features.Vectors
	k := r.Selection.Clusters.K

	estimateErr := func(res cluster.Result) float64 {
		reps := cluster.Representatives(data, res)
		est := 0.0
		for c, rep := range reps {
			est += float64(r.Full[rep].Cycles) * float64(res.Sizes[c])
		}
		return stats.RelativeError(est, float64(r.FullTotals.Cycles)) * 100
	}

	b.Run("kmeans", func(b *testing.B) {
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			res = cluster.KMeans(data, k, stats.NewRNG(uint64(i)+1), 0)
		}
		b.ReportMetric(res.WCSS, "wcss")
		b.ReportMetric(estimateErr(res), "cycles-err-%")
	})
	b.Run("ward", func(b *testing.B) {
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = cluster.Agglomerative(data, k)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.WCSS, "wcss")
		b.ReportMetric(estimateErr(res), "cycles-err-%")
	})
}

// BenchmarkAblation_XMeansVsLinearSearch compares the paper's linear
// BIC-scored k search against Pelleg & Moore's recursive x-means (the
// source of the BIC formulation) on a real feature matrix.
func BenchmarkAblation_XMeansVsLinearSearch(b *testing.B) {
	r := benchResult(b, "bbr1")
	data := r.Features.Vectors

	evalErr := func(res cluster.Result) float64 {
		reps := cluster.Representatives(data, res)
		est := 0.0
		for c, rep := range reps {
			est += float64(r.Full[rep].Cycles) * float64(res.Sizes[c])
		}
		return stats.RelativeError(est, float64(r.FullTotals.Cycles)) * 100
	}

	b.Run("linear-search", func(b *testing.B) {
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			sr, err := cluster.Search(data, cluster.DefaultSearchConfig(), stats.NewRNG(uint64(i)+3))
			if err != nil {
				b.Fatal(err)
			}
			res = sr.Best
		}
		b.ReportMetric(float64(res.K), "clusters")
		b.ReportMetric(evalErr(res), "cycles-err-%")
	})
	b.Run("xmeans", func(b *testing.B) {
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = cluster.XMeans(data, 1, 56, stats.NewRNG(uint64(i)+3), 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.K), "clusters")
		b.ReportMetric(evalErr(res), "cycles-err-%")
	})
}
