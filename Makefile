# Developer entry points. `make ci` is the full gate the CI workflow
# runs: vet, build, race-enabled tests, a one-iteration bench smoke and
# short fuzz smokes of every fuzz target.

GO ?= go

.PHONY: ci vet build test race bench-smoke fuzz-smoke

ci: vet build race bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bitrot in the bench suite
# without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# -fuzz must match exactly one target per package, so each fuzz target
# gets its own short invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/gltrace
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratedProgramExec$$' -fuzztime 5s ./internal/shader
	$(GO) test -run '^$$' -fuzz '^FuzzValidateArbitraryPrograms$$' -fuzztime 5s ./internal/shader
