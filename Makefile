# Developer entry points. `make ci` is the full gate the CI workflow
# runs: vet, build, race-enabled tests, the tile-parallel determinism
# goldens, a one-iteration bench smoke and short fuzz smokes of every
# fuzz target.

GO ?= go

.PHONY: ci vet build test race determinism bench-smoke tile-bench-smoke fuzz-smoke

ci: vet build race determinism bench-smoke tile-bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Explicit gate on the parallelism guarantees: serial, frame-parallel
# and tile-parallel (tile-workers 1, 2, 4 and beyond, plus the
# composition of both axes) must produce byte-identical stats and obs
# snapshots, race-detector clean.
determinism:
	$(GO) test -race -count=1 -run '^TestGoldenDeterminism' ./internal/tbr

# One iteration of every benchmark: catches bitrot in the bench suite
# without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# One iteration of the tile-parallel raster benchmark across worker
# counts: keeps the sharded path exercised even if the full bench
# suite is trimmed.
tile-bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkTileParallelRaster$$' -benchtime 1x ./internal/tbr

# -fuzz must match exactly one target per package, so each fuzz target
# gets its own short invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/gltrace
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratedProgramExec$$' -fuzztime 5s ./internal/shader
	$(GO) test -run '^$$' -fuzz '^FuzzValidateArbitraryPrograms$$' -fuzztime 5s ./internal/shader
