# Developer entry points. `make ci` is the full gate the CI workflow
# runs: vet, build, race-enabled tests, the tile-parallel determinism
# goldens, the differential validation oracle, the internal/check
# coverage floor, a one-iteration bench smoke and short fuzz smokes of
# every fuzz target.

GO ?= go

# `make bench` sampling: enough repetitions for benchstat to attach
# confidence intervals to the committed baselines without taking all day.
BENCHTIME ?= 100ms
BENCHCOUNT ?= 5

# Minimum statement coverage for the validation subsystem itself — the
# checker that gates everything else must not rot unexercised.
CHECK_COVER_FLOOR ?= 85

# Minimum statement coverage for the run supervisor — the machinery
# that promises byte-identical resume must stay exercised.
RESILIENCE_COVER_FLOOR ?= 85

# Minimum statement coverage for the campaign service — the cache
# identity, backpressure and drain guarantees live or die in tests.
SERVE_COVER_FLOOR ?= 85

# Minimum statement coverage for the distributed campaign fabric — the
# failover and byte-identity guarantees of cluster mode.
FABRIC_COVER_FLOOR ?= 85

# Minimum statement coverage for the streaming first phase — the
# bounded-memory stratifier behind unbounded-stream campaigns.
STREAM_COVER_FLOOR ?= 85

# Minimum statement coverage for the chaos transport — the fault
# injector that certifies the fabric's trust layer must itself be
# certified.
CHAOS_COVER_FLOOR ?= 85

.PHONY: ci vet build test race determinism resilience serve fabric stream chaos validate cover-check resilience-cover-check serve-cover-check fabric-cover-check stream-cover-check chaos-cover-check bench bench-tbr bench-cluster bench-check bench-smoke tile-bench-smoke fuzz-smoke

ci: vet build race determinism resilience serve fabric stream chaos validate cover-check resilience-cover-check serve-cover-check fabric-cover-check stream-cover-check chaos-cover-check bench-check bench-smoke tile-bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Explicit gate on the parallelism guarantees: serial, frame-parallel
# and tile-parallel (tile-workers 1, 2, 4 and beyond, plus the
# composition of both axes) must produce byte-identical stats and obs
# snapshots, race-detector clean.
determinism:
	$(GO) test -race -count=1 -run '^TestGoldenDeterminism' ./internal/tbr

# Explicit gate on the resilience guarantees: the kill-and-resume
# golden (byte-identical stats, obs snapshots and checkpoint bytes
# across kill points, worker counts and tile-worker counts, under
# injected faults) and the degraded-mode oracle (three fixed seeds,
# quarantined representative, accuracy within 3x-widened bands), both
# race-detector clean.
resilience:
	$(GO) test -race -count=1 -run '^TestGoldenKillAndResume$$' ./internal/resilience
	$(GO) test -race -count=1 -run '^TestDegradedAccuracyWithinWidenedBands$$' ./internal/resilience

# Explicit gate on the campaign service guarantees: concurrent
# identical submissions deduplicate to one execution with byte-identical
# results, the admission queue backpressures with 429 + Retry-After and
# drains cleanly, a drained daemon's checkpoints resume byte-identically
# after restart, and the CLI's -server mode matches a local run — all
# race-detector clean.
serve:
	$(GO) test -race -count=1 ./internal/serve
	$(GO) test -race -count=1 -run '^TestServerMode' ./cmd/megsim
	$(GO) test -race -count=1 ./cmd/megsimd

# Explicit gate on the cluster guarantees: killing a worker mid-campaign
# still produces byte-identical results (the coordinator fails over and
# the supervisor requeues lost frames), a campaign drained on one
# coordinator resumes byte-identically on another over a different
# fleet, routing policies respect draining/affinity invariants, and the
# worker/coordinator endpoints hold their refusal semantics — all
# race-detector clean.
fabric:
	$(GO) test -race -count=1 ./internal/fabric

# Explicit gate on the chaos-hardening guarantees: the deterministic
# fault transport replays identical fault sequences for identical
# seeds, and the end-to-end soak — a fleet with one byzantine worker
# behind the chaos transport, every honest worker killed and restarted
# mid-campaign — quarantines the byzantine worker, requeues the killed
# frames, and still produces a report byte-identical to a clean
# single-process run. Per-class property tests pin that every fault
# class either triggers recovery or is absorbed without a trace — all
# race-detector clean.
chaos:
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -count=1 -run '^TestChaosSoakByzantineKillRestart$$|^TestChaosFaultClassesPreserveReport$$|^TestClusterGoldenWithAuditAndHedging$$' ./internal/fabric

# Explicit gate on the streaming guarantees: the online stratifier is
# chunk-split invariant and bounded-memory, its snapshots round-trip
# byte-identically, the goldens pin streaming-vs-batch selection
# agreement on the oracle seeds, and a campaign killed mid-stream
# resumes to a byte-identical report at tile-workers 1 and 4 — all
# race-detector clean.
stream:
	$(GO) test -race -count=1 ./internal/stream
	$(GO) test -race -count=1 -run '^TestSampleStreaming|^TestStream' ./megsim ./cmd/megsim
	$(GO) test -race -count=1 -run '^TestStream' ./internal/serve

# The statistical acceptance gate: the differential oracle of
# internal/check runs MEGsim-sampled vs full simulation over three fixed
# randomized workloads (race-enabled, invariants armed) and fails if any
# metric's relative error leaves its tolerance band. The JSON accuracy
# report lands in results/validate.json.
validate:
	$(GO) run -race ./cmd/experiments validate -seeds 1,2,3 -out results/validate.json

# Coverage floor for the validation subsystem.
cover-check:
	@cov=$$($(GO) test -cover ./internal/check | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "cover-check: no coverage reported for internal/check"; exit 1; fi; \
	echo "internal/check coverage: $$cov% (floor $(CHECK_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(CHECK_COVER_FLOOR))}" || { echo "cover-check: coverage $$cov% below $(CHECK_COVER_FLOOR)% floor"; exit 1; }

# Coverage floor for the run supervisor.
resilience-cover-check:
	@cov=$$($(GO) test -cover ./internal/resilience | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "resilience-cover-check: no coverage reported for internal/resilience"; exit 1; fi; \
	echo "internal/resilience coverage: $$cov% (floor $(RESILIENCE_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(RESILIENCE_COVER_FLOOR))}" || { echo "resilience-cover-check: coverage $$cov% below $(RESILIENCE_COVER_FLOOR)% floor"; exit 1; }

# Coverage floor for the campaign service.
serve-cover-check:
	@cov=$$($(GO) test -cover ./internal/serve | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "serve-cover-check: no coverage reported for internal/serve"; exit 1; fi; \
	echo "internal/serve coverage: $$cov% (floor $(SERVE_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(SERVE_COVER_FLOOR))}" || { echo "serve-cover-check: coverage $$cov% below $(SERVE_COVER_FLOOR)% floor"; exit 1; }

# Coverage floor for the campaign fabric.
fabric-cover-check:
	@cov=$$($(GO) test -cover ./internal/fabric | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "fabric-cover-check: no coverage reported for internal/fabric"; exit 1; fi; \
	echo "internal/fabric coverage: $$cov% (floor $(FABRIC_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(FABRIC_COVER_FLOOR))}" || { echo "fabric-cover-check: coverage $$cov% below $(FABRIC_COVER_FLOOR)% floor"; exit 1; }

# Coverage floor for the streaming first phase.
stream-cover-check:
	@cov=$$($(GO) test -cover ./internal/stream | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "stream-cover-check: no coverage reported for internal/stream"; exit 1; fi; \
	echo "internal/stream coverage: $$cov% (floor $(STREAM_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(STREAM_COVER_FLOOR))}" || { echo "stream-cover-check: coverage $$cov% below $(STREAM_COVER_FLOOR)% floor"; exit 1; }

# Coverage floor for the chaos transport.
chaos-cover-check:
	@cov=$$($(GO) test -cover ./internal/chaos | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "chaos-cover-check: no coverage reported for internal/chaos"; exit 1; fi; \
	echo "internal/chaos coverage: $$cov% (floor $(CHAOS_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$cov >= $(CHAOS_COVER_FLOOR))}" || { echo "chaos-cover-check: coverage $$cov% below $(CHAOS_COVER_FLOOR)% floor"; exit 1; }

# Benchmark baselines: run the tbr and cluster suites, keep the raw
# benchstat-format text, and convert to JSON with cmd/benchjson. The
# JSON files are committed as baselines; compare a fresh run with
#   jq -r '.raw[]' results/BENCH_tbr.json > old.txt && benchstat old.txt new.txt
bench: bench-tbr bench-cluster

bench-tbr:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/tbr/... > results/BENCH_tbr.txt
	$(GO) run ./cmd/benchjson -in results/BENCH_tbr.txt -out results/BENCH_tbr.json

bench-cluster:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/cluster > results/BENCH_cluster.txt
	$(GO) run ./cmd/benchjson -in results/BENCH_cluster.txt -out results/BENCH_cluster.json

# Benchmark regression gate: rerun the tbr suite and compare against
# the committed baseline with cmd/benchjson -check. Allocation counts
# gate tightly (they are deterministic — a reintroduced per-tile
# allocation fails regardless of machine weather); wall clock gates
# primarily through the tile-workers=4 / serial ratio measured within
# the SAME run, which cancels host-speed variation (shared CI hosts
# have been observed to swing near 2x on an identical binary), plus a
# deliberately generous absolute backstop for gross regressions. The
# fresh run is left in results/BENCH_tbr.new.txt for benchstat
# comparison against `jq -r '.raw[]' results/BENCH_tbr.json`.
#
# -max-alloc-growth 2.0: the frame benchmarks' allocs/op is fixed
# setup amortized over a small, benchtime-dependent b.N, so it jitters
# ~50-80; losing arena reuse jumps it to several hundred (the
# pre-arena path measured ~547/op at tile-workers=4), which 2x of a
# ~50-70 baseline still catches with an order of magnitude to spare.
#
# -max-ratio-growth 1.5: serial and tile-workers=4 run about a minute
# apart inside one `go test` invocation, so the machine-weather window
# can shift between them; +-25% ratio jitter has been observed on an
# otherwise idle host. A hot-path-only 2x regression still lands the
# ratio near 2x baseline, well past the 1.5x limit.
bench-check:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/tbr/... > results/BENCH_tbr.new.txt
	$(GO) run ./cmd/benchjson -check -baseline results/BENCH_tbr.json \
		-ratio 'BenchmarkTileParallelRaster/tile-workers=4:BenchmarkTileParallelRaster/serial' \
		-max-alloc-growth 2.0 -max-ratio-growth 1.5 \
		-in results/BENCH_tbr.new.txt

# One iteration of every benchmark: catches bitrot in the bench suite
# without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# One iteration of the tile-parallel raster benchmark across worker
# counts: keeps the sharded path exercised even if the full bench
# suite is trimmed.
tile-bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkTileParallelRaster$$' -benchtime 1x ./internal/tbr

# -fuzz must match exactly one target per package, so each fuzz target
# gets its own short invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/gltrace
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratedProgramExec$$' -fuzztime 5s ./internal/shader
	$(GO) test -run '^$$' -fuzz '^FuzzValidateArbitraryPrograms$$' -fuzztime 5s ./internal/shader
	$(GO) test -run '^$$' -fuzz '^FuzzSearch$$' -fuzztime 5s ./internal/cluster
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime 5s ./internal/resilience
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeCampaignRequest$$' -fuzztime 5s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeWorkUnit$$' -fuzztime 5s ./internal/fabric
	$(GO) test -run '^$$' -fuzz '^FuzzStreamIngest$$' -fuzztime 5s ./internal/stream
