package megsim_test

import (
	"bytes"
	"testing"

	"repro/megsim"
)

func testScale() megsim.Scale {
	return megsim.Scale{Width: 128, Height: 64, FrameDivisor: 20, DetailDivisor: 2}
}

func TestBenchmarksListed(t *testing.T) {
	bs := megsim.Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %v", bs)
	}
	for _, b := range bs {
		if _, err := megsim.GetBenchmark(b); err != nil {
			t.Errorf("%s: %v", b, err)
		}
	}
	if _, err := megsim.GetBenchmark("bogus"); err == nil {
		t.Fatal("accepted bogus alias")
	}
}

func TestSampleEndToEnd(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	run, err := megsim.Sample(tr, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Representatives()) == 0 {
		t.Fatal("no representatives")
	}
	if run.ReductionFactor() <= 1 {
		t.Fatalf("reduction = %v", run.ReductionFactor())
	}
	if run.Estimate.Cycles == 0 {
		t.Fatal("empty estimate")
	}
	if len(run.RepresentativeStats) != len(run.Representatives()) {
		t.Fatal("stats/representatives mismatch")
	}
}

func TestSampleMatchesFullSimulation(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("jjo", testScale())
	run, err := megsim.Sample(tr, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := megsim.SimulateFull(tr, megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	actual := megsim.SumStats(full)
	acc := megsim.CompareAccuracy(&run.Estimate, &actual)
	if acc[megsim.MetricCycles] > 0.25 {
		t.Fatalf("cycles error %.1f%% too large for the public-API flow", acc.Percent(megsim.MetricCycles))
	}
}

func TestSimilarityMatrixFromRun(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("pvz", testScale())
	ch, err := megsim.Characterize(tr)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := megsim.SelectFrames(ch, megsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := megsim.SimilarityMatrix(sel.Features)
	if m.N() != tr.NumFrames() {
		t.Fatalf("matrix size %d, frames %d", m.N(), tr.NumFrames())
	}
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty PGM")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	path := t.TempDir() + "/trace.bin"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := megsim.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumFrames() != tr.NumFrames() {
		t.Fatal("round trip mangled trace")
	}
}

func TestTBDRConfigThroughFacade(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("bbr1", testScale())
	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = true
	run, err := megsim.Sample(tr, megsim.DefaultConfig(), gpu)
	if err != nil {
		t.Fatal(err)
	}
	base, err := megsim.Sample(tr, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Estimate.FragmentsShaded >= base.Estimate.FragmentsShaded {
		t.Fatalf("TBDR estimate shaded %d fragments, TBR %d — HSR had no effect",
			run.Estimate.FragmentsShaded, base.Estimate.FragmentsShaded)
	}
}

func TestFacadeWrappers(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())

	// Parallel full simulation matches the sequential one exactly.
	seq, err := megsim.SimulateFull(tr, megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	par, err := megsim.SimulateFullParallel(tr, megsim.DefaultGPUConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("frame %d differs", i)
		}
	}

	// Presets resolve and validate.
	if len(megsim.GPUPresets()) < 4 {
		t.Fatal("missing presets")
	}
	cfg, err := megsim.GPUPreset("tbdr")
	if err != nil || !cfg.DeferredShading {
		t.Fatalf("tbdr preset: %+v, %v", cfg.DeferredShading, err)
	}
	if _, err := megsim.GPUPreset("bogus"); err == nil {
		t.Fatal("bogus preset accepted")
	}

	// Frame rendering through the facade.
	img, err := megsim.RenderFrame(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != tr.Viewport.Width {
		t.Fatalf("image width %d", img.Bounds().Dx())
	}
}

func TestFacadeRecorderConstructs(t *testing.T) {
	rec := megsim.NewRecorder("facade", 64, 64)
	rec.BeginFrame()
	rec.EndFrame()
	if rec.NumFrames() != 1 {
		t.Fatalf("frames = %d", rec.NumFrames())
	}
}

func TestGenerateTraceCustomProfile(t *testing.T) {
	p, err := megsim.GetBenchmark("hcr")
	if err != nil {
		t.Fatal(err)
	}
	p.Alias = "hcr-custom"
	p.Frames = 60
	tr, err := megsim.GenerateTrace(p, testScale())
	if err != nil {
		t.Fatal(err)
	}
	// 60 frames / FrameDivisor 20 = 3, clamped up to the profile's 4
	// phases so every phase appears at least once.
	if tr.Name != "hcr-custom" || tr.NumFrames() != 4 {
		t.Fatalf("custom trace %s/%d", tr.Name, tr.NumFrames())
	}
}
