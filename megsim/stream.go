package megsim

import (
	"context"
	"fmt"

	"repro/internal/funcsim"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// Streaming re-exports: the bounded-memory online first phase of
// internal/stream, usable from the single public import.
type (
	// StreamConfig configures the online stratifier: stratum budget,
	// per-stratum reservoir capacity, seed, feature construction.
	StreamConfig = stream.Config
	// StreamSelection is the streaming second-phase plan: strata with
	// member counts, representatives and substitution alternates.
	StreamSelection = stream.Selection
	// StreamStratum is one finalized stratum.
	StreamStratum = stream.Stratum
	// StreamDegradation reports substituted representatives and lost
	// strata in a streaming estimate.
	StreamDegradation = stream.Degradation
	// StreamIngestor is the online stratifier itself, for callers that
	// feed frames from their own source (the campaign service's
	// chunked-upload sessions).
	StreamIngestor = stream.Ingestor
)

// DefaultStreamConfig returns the paper-faithful streaming settings.
func DefaultStreamConfig() StreamConfig { return stream.DefaultConfig() }

// NewStreamIngestor builds an online stratifier over a trace's static
// shader costs without touching its frames.
func NewStreamIngestor(tr *Trace, cfg StreamConfig) (*StreamIngestor, error) {
	st, err := funcsim.NewStreamer(tr)
	if err != nil {
		return nil, err
	}
	vs, fs := st.Static()
	return stream.NewIngestor(tr.Name, vs, fs, cfg), nil
}

// StreamingOptions configures SampleStreaming.
type StreamingOptions struct {
	// Stream configures the online first phase (zero value = defaults).
	Stream StreamConfig
	// Resilience configures the phase-2 supervisor: retry, quarantine,
	// checkpointing. With CheckpointPath set, ingest progress (the
	// strata snapshot) checkpoints alongside simulated frames inside
	// the same CRC envelope, and Resume restarts mid-stream.
	Resilience ResilienceConfig
	// EagerEvery launches representative simulations mid-stream every
	// EagerEvery ingested frames — the "second phase as strata
	// stabilize" mode. Simulated frames are pure per frame, so eager
	// results are a warm cache: frames still representative at stream
	// end are adopted, the rest are wasted work but never wrong.
	// 0 = run phase 2 only at stream end.
	EagerEvery int
	// CheckpointEvery bounds how many ingested frames a crash can lose
	// (0 = DefaultStreamCheckpointEvery; negative = checkpoint only at
	// phase boundaries). Ignored without a CheckpointPath.
	CheckpointEvery int
	// Runner overrides the phase-2 frame function (nil = the in-process
	// simulator via FrameRunner). The campaign service wraps its
	// per-representative stats cache and remote dispatch here; the
	// function must honor FrameRunner's purity contract.
	Runner ResilientFrameFunc
	// Snapshot, when non-empty, seeds the ingestor from a strata
	// snapshot taken by another Ingestor over the same workload (the
	// service's chunked-upload sessions hand their ingest state to the
	// phase-2 job this way). A checkpoint's own stream state, when
	// present, takes precedence. Restore failure falls back to
	// re-ingesting from frame zero and is reported in StreamResumeErr.
	Snapshot []byte
	// MaxFrames truncates the stream to its first MaxFrames frames
	// (0 = the whole trace): the estimate then extrapolates over the
	// streamed prefix only, which is what a chunked-upload session that
	// stopped early means.
	MaxFrames int
}

// DefaultStreamCheckpointEvery is the default ingest checkpoint cadence.
const DefaultStreamCheckpointEvery = 16

// StreamingRun is the outcome of a streaming sampling campaign.
type StreamingRun struct {
	// Trace is the analyzed workload.
	Trace *Trace
	// Selection is the finalized streaming selection.
	Selection *StreamSelection
	// RepresentativeStats maps simulated frame -> stats (it may hold
	// extra frames simulated eagerly for strata that later merged).
	RepresentativeStats map[int]FrameStats
	// Estimate is the extrapolated full-stream statistics.
	Estimate FrameStats
	// Supervision aggregates the phase-2 supervisor outcomes.
	Supervision *ResilienceResult
	// Degradation is non-nil when representatives were substituted or
	// strata lost; never silent.
	Degradation *StreamDegradation
	// ResumedFrames counts ingest work skipped by restoring a strata
	// snapshot (frames NOT re-characterized on resume).
	ResumedFrames int
	// StreamResumeErr records why a requested mid-stream resume fell
	// back to re-ingesting from frame zero (missing/corrupt/mismatched
	// snapshot). Re-ingest reproduces the identical strata, so this is
	// a performance note, not an accuracy one.
	StreamResumeErr error
}

// Representatives returns the frames the final plan simulated.
func (r *StreamingRun) Representatives() []int { return r.Selection.Representatives() }

// ReductionFactor returns frames/strata.
func (r *StreamingRun) ReductionFactor() float64 { return r.Selection.ReductionFactor() }

// Degraded reports whether the estimate was computed from a degraded
// plan.
func (r *StreamingRun) Degraded() bool { return r.Degradation.Degraded() }

// SampleStreaming executes the streaming MEGsim flow over a trace
// replayed as a frame stream: frames are characterized and folded into
// the online stratifier one at a time — the full N × D matrix is never
// built — then the finalized strata's representatives are simulated
// under the resilient supervisor and extrapolated by stratum weight.
// Memory stays O(strata · reservoir) regardless of trace length.
//
// With Resilience.CheckpointPath set the campaign is killable anywhere:
// ingest checkpoints the strata snapshot every CheckpointEvery frames,
// phase 2 checkpoints per completed frame (with the snapshot preserved
// in the same envelope), and a Resume re-run finishes with stats,
// report and checkpoint bytes identical to an uninterrupted run.
func SampleStreaming(ctx context.Context, tr *Trace, opts StreamingOptions, gpu GPUConfig) (*StreamingRun, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	streamer, err := funcsim.NewStreamer(tr)
	if err != nil {
		return nil, fmt.Errorf("megsim: streaming characterization: %w", err)
	}
	vs, fs := streamer.Static()
	ing := stream.NewIngestor(tr.Name, vs, fs, opts.Stream)

	rcfg := opts.Resilience
	if rcfg.Fingerprint == "" {
		rcfg.Fingerprint = RunFingerprint(tr, gpu)
	}
	if rcfg.Obs == nil {
		rcfg.Obs = gpu.Obs
	}
	hasCk := rcfg.CheckpointPath != ""
	every := opts.CheckpointEvery
	if every == 0 {
		every = DefaultStreamCheckpointEvery
	}
	runner := opts.Runner
	if runner == nil {
		runner = FrameRunner(tr, gpu)
	}
	numFrames := tr.NumFrames()
	if opts.MaxFrames > 0 && opts.MaxFrames < numFrames {
		numFrames = opts.MaxFrames
	}

	run := &StreamingRun{Trace: tr, Supervision: &ResilienceResult{CheckpointPath: rcfg.CheckpointPath}}

	// Resume: restore the strata snapshot from the checkpoint and skip
	// the frames it already ingested. Failure of any kind falls back to
	// re-ingesting from frame zero — characterization is deterministic,
	// so the rebuilt strata are identical, just slower to reach.
	base := &resilience.Checkpoint{Fingerprint: rcfg.Fingerprint}
	if hasCk && rcfg.Resume {
		ck, lerr := resilience.LoadCheckpoint(rcfg.CheckpointPath, rcfg.Fingerprint)
		switch {
		case lerr != nil:
			run.StreamResumeErr = lerr
		case ck == nil:
			// nothing to resume
		case len(ck.Stream) == 0:
			base = ck // batch-era records; stream state starts fresh
		default:
			if rerr := ing.Restore(ck.Stream); rerr != nil {
				run.StreamResumeErr = rerr
				base = ck
			} else if ing.Frames() > numFrames {
				return nil, fmt.Errorf("megsim: strata snapshot has %d frames, stream has %d", ing.Frames(), numFrames)
			} else {
				run.ResumedFrames = ing.Frames()
				base = ck
			}
		}
	}
	// A caller-provided snapshot seeds the ingestor only when the
	// checkpoint didn't already restore strata state (the checkpoint is
	// never behind: every rewrite carries the latest snapshot).
	if len(opts.Snapshot) > 0 && ing.Frames() == 0 && ing.NumStrata() == 0 {
		if rerr := ing.Restore(opts.Snapshot); rerr != nil {
			run.StreamResumeErr = rerr
		} else if ing.Frames() > numFrames {
			return nil, fmt.Errorf("megsim: strata snapshot has %d frames, stream has %d", ing.Frames(), numFrames)
		} else {
			run.ResumedFrames = ing.Frames()
		}
	}

	// saveIngest rewrites the checkpoint with the current strata
	// snapshot while preserving every completed frame record.
	saveIngest := func() error {
		if !hasCk {
			return nil
		}
		snap, serr := ing.Snapshot()
		if serr != nil {
			return fmt.Errorf("megsim: strata snapshot: %w", serr)
		}
		base.Stream = snap
		if serr := resilience.SaveCheckpoint(rcfg.CheckpointPath, base); serr != nil {
			return serr
		}
		return nil
	}
	// reloadBase re-adopts the checkpoint after a supervisor round so
	// later ingest-time rewrites keep the round's frame records.
	reloadBase := func() {
		if !hasCk {
			return
		}
		if ck, lerr := resilience.LoadCheckpoint(rcfg.CheckpointPath, rcfg.Fingerprint); lerr == nil && ck != nil {
			base = ck
		}
	}

	if err := saveIngest(); err != nil {
		return run, err
	}

	repStats := map[int]FrameStats{}
	quarantined := map[int]bool{}
	for _, f := range rcfg.Quarantine {
		quarantined[f] = true
	}

	// superviseRound runs one phase-2 supervisor pass over todo frames.
	// The current strata snapshot rides in Config.StreamState so every
	// per-frame checkpoint rewrite keeps phase 1 resumable.
	superviseRound := func(todo []int, parent *ObsRegistry) (*ResilienceResult, error) {
		roundCfg := rcfg
		roundCfg.Quarantine = nil
		roundCfg.Resume = hasCk
		roundCfg.Obs = parent
		if hasCk {
			snap, serr := ing.Snapshot()
			if serr != nil {
				return nil, fmt.Errorf("megsim: strata snapshot: %w", serr)
			}
			roundCfg.StreamState = snap
		}
		r, rerr := resilience.Run(ctx, todo, runner, roundCfg)
		if r != nil {
			for f, st := range r.Stats {
				repStats[f] = st
			}
			for _, q := range r.Quarantined {
				quarantined[q.Frame] = true
			}
			reloadBase()
		}
		return r, rerr
	}

	// Phase 1: ingest the stream, checkpointing strata state and — in
	// eager mode — launching representative simulations as they settle.
	var prof funcsim.FrameProfile
	for f := run.ResumedFrames; f < numFrames; f++ {
		if err := ctx.Err(); err != nil {
			ferr := saveIngest()
			if ferr == nil {
				ferr = err
			}
			return run, ferr
		}
		if err := streamer.ProfileAt(&prof, f); err != nil {
			return run, fmt.Errorf("megsim: streaming characterization: %w", err)
		}
		if err := ing.Add(&prof); err != nil {
			return run, fmt.Errorf("megsim: frame %d: %w", f, err)
		}
		if hasCk && every > 0 && (f+1)%every == 0 {
			if err := saveIngest(); err != nil {
				return run, err
			}
		}
		if opts.EagerEvery > 0 && (f+1)%opts.EagerEvery == 0 && f+1 < numFrames {
			sel, serr := ing.Finalize()
			if serr != nil {
				return run, serr
			}
			var todo []int
			for _, fr := range sel.Plan(quarantined) {
				if fr >= 0 {
					if _, done := repStats[fr]; !done {
						todo = append(todo, fr)
					}
				}
			}
			if len(todo) > 0 {
				// Eager observability goes to a discardable twin of the
				// real registry when checkpointing: the per-frame deltas
				// persist in the records and merge into the real registry
				// exactly once, during the final phase — identically in
				// interrupted and uninterrupted runs. Without a checkpoint
				// there is no adoption path, so merge directly.
				parent := rcfg.Obs
				if hasCk {
					parent = rcfg.Obs.NewLocal()
				}
				r, rerr := superviseRound(todo, parent)
				if r != nil && !hasCk {
					mergeSupervision(run.Supervision, r, false)
				}
				if rerr != nil {
					return run, rerr
				}
			}
		}
	}
	if ing.Frames() == 0 {
		return run, fmt.Errorf("megsim: empty trace, nothing to stream")
	}
	if err := saveIngest(); err != nil {
		return run, err
	}

	sel, err := ing.Finalize()
	if err != nil {
		return run, err
	}
	run.Selection = sel

	// Phase 2 fixed point, mirroring SampleResilientPrepared: simulate
	// the plan; every fresh quarantine re-plans with the next alternate
	// on the stratum's ladder; terminates because each round either
	// quarantines a new frame or requests nothing.
	requested := map[int]bool{}
	for round := 0; ; round++ {
		plan := sel.Plan(quarantined)
		var todo []int
		for _, f := range plan {
			if f < 0 || requested[f] {
				continue
			}
			if !hasCk {
				// Without a checkpoint there is no record adoption:
				// skip frames already simulated eagerly (their obs was
				// merged directly when they ran).
				if _, done := repStats[f]; done {
					continue
				}
			}
			requested[f] = true
			todo = append(todo, f)
		}
		if len(todo) == 0 {
			break
		}
		r, rerr := superviseRound(todo, rcfg.Obs)
		if r != nil {
			mergeSupervision(run.Supervision, r, round == 0)
		}
		if rerr != nil {
			return run, rerr
		}
	}

	est, deg, err := sel.EstimateWith(sel.Plan(quarantined), repStats)
	if err != nil {
		return run, fmt.Errorf("megsim: streaming estimation: %w", err)
	}
	run.RepresentativeStats = repStats
	run.Estimate = est
	if deg.Degraded() {
		run.Degradation = deg
	}
	return run, nil
}
