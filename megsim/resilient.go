package megsim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tbr"
)

// Resilience re-exports: the supervisor configuration and outcome types
// of internal/resilience, so a user can drive supervised runs from the
// single public import.
type (
	// ResilienceConfig configures the run supervisor: retry/backoff,
	// quarantine, checkpoint/resume, watchdog.
	ResilienceConfig = resilience.Config
	// ResilienceResult is the supervisor's outcome: completed stats,
	// quarantine records, resume/retry/stall accounting.
	ResilienceResult = resilience.Result
	// QuarantineRecord describes one frame the supervisor gave up on.
	QuarantineRecord = resilience.QuarantineRecord
	// DegradedSelection is a selection adjusted for quarantined frames.
	DegradedSelection = resilience.DegradedSelection
	// Substitution records one representative replaced by a stand-in.
	Substitution = resilience.Substitution
	// ResilientFrameFunc simulates one frame for the supervisor.
	ResilientFrameFunc = resilience.FrameFunc
)

// Supervise runs fn over frames under the run supervisor: per-frame
// retry with capped deterministic backoff, quarantine, frame-granularity
// checkpointing with resume, and the stall watchdog. It is the
// frame-loop primitive behind SampleResilient, exposed for callers (the
// gpusim CLI, custom sweeps) that bring their own frame list.
func Supervise(ctx context.Context, frames []int, fn ResilientFrameFunc, cfg ResilienceConfig) (*ResilienceResult, error) {
	return resilience.Run(ctx, frames, fn, cfg)
}

// ResilientRun is a sampling run executed under the run supervisor. On
// a healthy run it is exactly a Run; when frames were quarantined it
// additionally carries the supervision record and the degraded
// selection the estimate was computed from — degradation is always
// reported, never silent.
type ResilientRun struct {
	*Run
	// Supervision aggregates the supervisor outcomes (one per
	// degradation round): quarantines, retries, resumed frames, stalls.
	Supervision *ResilienceResult
	// Degradation is non-nil when representatives were substituted or
	// clusters lost; the Estimate then comes from the degraded
	// selection with rescaled weights.
	Degradation *DegradedSelection
}

// Degraded reports whether the estimate was computed from a degraded
// selection.
func (r *ResilientRun) Degraded() bool {
	return r.Degradation != nil && r.Degradation.Degraded()
}

// RunFingerprint identifies a (workload, GPU configuration) pair for
// checkpoint compatibility: resuming is only allowed when the trace and
// every result-affecting GPU setting match. Knobs that never affect
// per-frame results — observability, invariant checkers, and the
// tile-worker count (any TileWorkers >= 1 is byte-identical) — are
// excluded, so a run checkpointed on 4 tile workers resumes cleanly on
// 1.
func RunFingerprint(tr *Trace, gpu GPUConfig) string {
	g := gpu
	g.Obs = nil
	g.Check = nil
	if g.TileWorkers > 1 {
		g.TileWorkers = 1
	}
	b, err := json.Marshal(struct {
		Trace  string     `json:"trace"`
		Frames int        `json:"frames"`
		GPU    tbr.Config `json:"gpu"`
	}{tr.Name, tr.NumFrames(), g})
	if err != nil {
		// tbr.Config is plain data; failure here is a programming error.
		panic(fmt.Sprintf("megsim: fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return "megsim-" + hex.EncodeToString(sum[:12])
}

// FrameRunner adapts the cycle-level simulator to the supervisor's
// FrameFunc: each attempt simulates one frame on a fresh simulator
// instance recording into the supervisor's per-frame registry, so the
// result is a pure function of the frame (frame isolation) and failed
// attempts never leave torn state behind.
func FrameRunner(tr *Trace, gpu GPUConfig) resilience.FrameFunc {
	return func(ctx context.Context, frame int, reg *obs.Registry) (FrameStats, error) {
		if err := ctx.Err(); err != nil {
			return FrameStats{}, err
		}
		g := gpu
		g.Obs = reg
		sim, err := NewSimulator(g, tr)
		if err != nil {
			return FrameStats{}, err
		}
		return sim.SimulateFrame(frame), nil
	}
}

// SampleResilient is Sample under the run supervisor: representative
// frames are simulated with per-frame retry and quarantine, progress is
// checkpointed at frame granularity (when rcfg.CheckpointPath is set),
// and quarantined representatives degrade gracefully — the next-closest
// in-cluster frame substitutes, weights rescale, and the ResilientRun
// reports the degradation. Cancelling ctx stops at the next frame
// boundary with a final checkpoint flushed, so a later call with
// rcfg.Resume picks up exactly where the run died; the resumed run's
// estimate and observability are byte-identical to an uninterrupted one.
func SampleResilient(ctx context.Context, tr *Trace, cfg Config, gpu GPUConfig, rcfg ResilienceConfig) (*ResilientRun, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch, err := Characterize(tr)
	if err != nil {
		return nil, fmt.Errorf("megsim: characterization: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sel, err := SelectFrames(ch, cfg)
	if err != nil {
		return nil, fmt.Errorf("megsim: selection: %w", err)
	}
	return SampleResilientPrepared(ctx, tr, ch, sel, gpu, rcfg, FrameRunner(tr, gpu))
}

// SampleResilientPrepared is the supervise-then-degrade core of
// SampleResilient for callers that bring their own characterization,
// selection and frame function — the campaign service (internal/serve)
// uses it to reuse a content-addressed characterization cache and to
// wrap FrameRunner with a per-representative result cache. The
// semantics are exactly SampleResilient's given the same inputs: fn
// must be pure per frame (same frame, same stats), which FrameRunner —
// or a cache over it — provides.
func SampleResilientPrepared(ctx context.Context, tr *Trace, ch *Characterization, sel *Selection, gpu GPUConfig, rcfg ResilienceConfig, fn ResilientFrameFunc) (*ResilientRun, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rcfg.Fingerprint == "" {
		rcfg.Fingerprint = RunFingerprint(tr, gpu)
	}
	if rcfg.Obs == nil {
		rcfg.Obs = gpu.Obs
	}

	quarantined := map[int]bool{}
	for _, f := range rcfg.Quarantine {
		quarantined[f] = true
	}
	sup := &ResilienceResult{CheckpointPath: rcfg.CheckpointPath}
	for f := range quarantined {
		// Mirror the supervisor's record for frames the caller excluded
		// up front, so the quarantine is visible in one place.
		sup.Quarantined = append(sup.Quarantined, QuarantineRecord{Frame: f, Err: "pre-quarantined"})
	}
	sort.Slice(sup.Quarantined, func(i, j int) bool { return sup.Quarantined[i].Frame < sup.Quarantined[j].Frame })

	// Supervise-then-degrade fixed point: simulate the active
	// representatives; every newly quarantined frame re-degrades the
	// selection, whose substitutes are simulated in the next round.
	// Each round resumes the same checkpoint, so one file accumulates
	// the whole campaign. Terminates because each round either
	// quarantines a new frame (finitely many) or stops.
	repStats := map[int]FrameStats{}
	deg := resilience.Degrade(sel, quarantined)
	for round := 0; ; round++ {
		var todo []int
		for _, f := range deg.ActiveRepresentatives() {
			if _, done := repStats[f]; !done {
				todo = append(todo, f)
			}
		}
		if len(todo) == 0 {
			break
		}
		roundCfg := rcfg
		roundCfg.Quarantine = nil // pre-quarantine handled via Degrade
		if round > 0 {
			roundCfg.Resume = true // later rounds extend the round-0 checkpoint
		}
		r, err := resilience.Run(ctx, todo, fn, roundCfg)
		if r != nil {
			mergeSupervision(sup, r, round == 0)
			for f, st := range r.Stats {
				repStats[f] = st
			}
		}
		if err != nil {
			return &ResilientRun{Run: &Run{Trace: tr, Characterization: ch, Selection: sel}, Supervision: sup}, err
		}
		fresh := false
		for _, q := range r.Quarantined {
			if !quarantined[q.Frame] {
				quarantined[q.Frame] = true
				fresh = true
			}
		}
		if !fresh {
			break
		}
		deg = resilience.Degrade(sel, quarantined)
	}

	run := &Run{
		Trace:               tr,
		Characterization:    ch,
		Selection:           sel,
		RepresentativeStats: repStats,
	}
	out := &ResilientRun{Run: run, Supervision: sup}
	var err error
	if deg.Degraded() {
		out.Degradation = deg
		run.Estimate, err = deg.Estimate(repStats)
	} else {
		run.Estimate, err = sel.Estimate(repStats)
	}
	if err != nil {
		return out, fmt.Errorf("megsim: estimation: %w", err)
	}
	return out, nil
}

// mergeSupervision folds one supervisor round into the aggregate.
func mergeSupervision(dst, r *ResilienceResult, first bool) {
	if dst.Stats == nil {
		dst.Stats = map[int]FrameStats{}
	}
	for f, st := range r.Stats {
		dst.Stats[f] = st
	}
	seen := map[int]bool{}
	for _, q := range dst.Quarantined {
		seen[q.Frame] = true
	}
	for _, q := range r.Quarantined {
		if !seen[q.Frame] {
			dst.Quarantined = append(dst.Quarantined, q)
		}
	}
	sort.Slice(dst.Quarantined, func(i, j int) bool { return dst.Quarantined[i].Frame < dst.Quarantined[j].Frame })
	dst.Retried += r.Retried
	dst.Requeued += r.Requeued
	if first {
		// Only round 0 reflects a user-requested resume; later rounds
		// always "resume" the checkpoint this same call wrote.
		dst.Resumed = r.Resumed
		dst.ResumeErr = r.ResumeErr
	}
	for _, w := range r.StalledWorkers {
		found := false
		for _, have := range dst.StalledWorkers {
			if have == w {
				found = true
			}
		}
		if !found {
			dst.StalledWorkers = append(dst.StalledWorkers, w)
		}
	}
	sort.Ints(dst.StalledWorkers)
}

// SimulateFullParallelCtx is SimulateFullParallel honoring a context:
// cancellation stops every worker at its next frame claim.
func SimulateFullParallelCtx(ctx context.Context, tr *Trace, gpu GPUConfig, workers int) ([]FrameStats, error) {
	return tbr.SimulateAllParallelCtx(ctx, gpu, tr, workers, nil)
}
