package megsim_test

import (
	"fmt"

	"repro/megsim"
)

// The full MEGsim flow on a shortened built-in benchmark: characterize,
// cluster, simulate only the representatives, extrapolate.
func ExampleSample() {
	sc := megsim.Scale{Width: 128, Height: 64, FrameDivisor: 20, DetailDivisor: 2}
	trace := megsim.MustGenerateBenchmark("hcr", sc)
	run, err := megsim.Sample(trace, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	reps := len(run.Representatives())
	fmt.Printf("frames: %d\n", trace.NumFrames())
	fmt.Printf("few representatives: %v\n", reps >= 2 && reps <= 30)
	fmt.Printf("reduction over 4x: %v\n", run.ReductionFactor() > 4)
	// Output:
	// frames: 100
	// few representatives: true
	// reduction over 4x: true
}

// Selecting frames without simulating them — the architecture-
// independent half of the methodology.
func ExampleSelectFrames() {
	sc := megsim.Scale{Width: 128, Height: 64, FrameDivisor: 50, DetailDivisor: 2}
	trace := megsim.MustGenerateBenchmark("pvz", sc)
	ch, err := megsim.Characterize(trace)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sel, err := megsim.SelectFrames(ch, megsim.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("clusters: %v\n", sel.Clusters.K >= 2)
	fmt.Printf("every frame assigned: %v\n", sel.NumFrames() == trace.NumFrames())
	// Output:
	// clusters: true
	// every frame assigned: true
}
