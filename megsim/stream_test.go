package megsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/serve"
	"repro/megsim"
)

// TestSampleStreamingHealthy: the streaming flow over a healthy trace
// produces a real selection with a reduction factor, an estimate, and
// no degradation.
func TestSampleStreamingHealthy(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	srun, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{}, megsim.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if srun.Degraded() {
		t.Fatalf("healthy streaming run degraded: %+v", srun.Degradation)
	}
	if len(srun.Representatives()) == 0 || srun.ReductionFactor() <= 1 {
		t.Fatalf("selection: reps=%d reduction=%v", len(srun.Representatives()), srun.ReductionFactor())
	}
	if srun.Estimate.Cycles == 0 {
		t.Fatal("estimate has zero cycles")
	}
	if srun.Selection.Frames != tr.NumFrames() {
		t.Fatalf("selection covers %d frames, trace has %d", srun.Selection.Frames, tr.NumFrames())
	}
}

// normalizeReport zeroes the run-provenance fields that legitimately
// differ between an interrupted-then-resumed campaign and an
// uninterrupted one: wall time, the count of ingest frames skipped on
// resume, and which phase-2 records were adopted from the checkpoint.
// Every other byte of the report — selection, strata, estimates,
// coverage — must be identical.
func normalizeReport(rep *serve.CampaignReport) []byte {
	rep.SampledMillis = 0
	if rep.Streaming != nil {
		rep.Streaming.ResumedFrames = 0
	}
	if rep.Resilience != nil {
		rep.Resilience.Resumed = nil
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	return b
}

// TestSampleStreamingKillResume: a campaign killed mid-stream at varied
// frame indices and resumed from its checkpoint must finish with a
// report byte-identical (modulo provenance fields) to an uninterrupted
// run — same strata, same representatives, same estimate. The kill is
// modeled by truncating the stream with MaxFrames, which completes a
// checkpoint whose strata snapshot sits at exactly the kill frame.
func TestSampleStreamingKillResume(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("jjo", testScale())
	gpu := megsim.DefaultGPUConfig()
	n := tr.NumFrames()

	ref, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{}, gpu)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := normalizeReport(serve.NewStreamingCampaignReport(ref, 0))

	for _, kill := range []int{1, n / 3, 2 * n / 3} {
		ckpt := filepath.Join(t.TempDir(), "stream.ckpt")

		// Phase A: the doomed run — it gets through `kill` frames of
		// ingest (and whatever phase 2 its partial strata wanted) before
		// dying. Its checkpoint holds the strata snapshot at that frame.
		if _, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{
			MaxFrames:  kill,
			Resilience: megsim.ResilienceConfig{CheckpointPath: ckpt},
		}, gpu); err != nil {
			t.Fatalf("kill=%d: truncated run: %v", kill, err)
		}

		// Phase B: resume over the full stream.
		res, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{
			Resilience: megsim.ResilienceConfig{CheckpointPath: ckpt, Resume: true},
		}, gpu)
		if err != nil {
			t.Fatalf("kill=%d: resumed run: %v", kill, err)
		}
		if res.StreamResumeErr != nil {
			t.Fatalf("kill=%d: stream resume fell back: %v", kill, res.StreamResumeErr)
		}
		if res.ResumedFrames != kill {
			t.Fatalf("kill=%d: resumed %d ingest frames", kill, res.ResumedFrames)
		}

		if res.Estimate != ref.Estimate {
			t.Fatalf("kill=%d: estimate diverged:\n got %+v\nwant %+v", kill, res.Estimate, ref.Estimate)
		}
		if !reflect.DeepEqual(res.Selection, ref.Selection) {
			t.Fatalf("kill=%d: selection diverged", kill)
		}
		for _, f := range res.Representatives() {
			if res.RepresentativeStats[f] != ref.RepresentativeStats[f] {
				t.Fatalf("kill=%d: frame %d stats diverged", kill, f)
			}
		}
		if got := normalizeReport(serve.NewStreamingCampaignReport(res, 0)); !bytes.Equal(got, refBytes) {
			t.Fatalf("kill=%d: resumed report not byte-identical to uninterrupted run:\n%s\n---\n%s", kill, got, refBytes)
		}
	}
}

// TestSampleStreamingTileWorkersInvariant: the streaming estimate is
// identical at tile-workers 1 and 4 — the sharded raster stage cannot
// leak nondeterminism into the streaming flow. Runs under -race in the
// dedicated stream CI job.
func TestSampleStreamingTileWorkersInvariant(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())

	runs := make([]*megsim.StreamingRun, 0, 2)
	for _, tw := range []int{1, 4} {
		gpu := megsim.DefaultGPUConfig()
		gpu.TileWorkers = tw
		srun, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{}, gpu)
		if err != nil {
			t.Fatalf("tile-workers %d: %v", tw, err)
		}
		runs = append(runs, srun)
	}
	if runs[0].Estimate != runs[1].Estimate {
		t.Fatalf("estimate depends on tile-workers:\n tw=1 %+v\n tw=4 %+v", runs[0].Estimate, runs[1].Estimate)
	}
	if !reflect.DeepEqual(runs[0].Selection, runs[1].Selection) {
		t.Fatal("selection depends on tile-workers")
	}
}

// TestSampleStreamingEagerMatchesFinal: eagerly simulating mid-stream
// representatives (EagerEvery > 0) is a warm cache, never a different
// answer — the estimate and selection match the stream-end-only run.
func TestSampleStreamingEagerMatchesFinal(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	gpu := megsim.DefaultGPUConfig()

	plain, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{}, gpu)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{EagerEvery: 7}, gpu)
	if err != nil {
		t.Fatal(err)
	}
	if eager.Estimate != plain.Estimate {
		t.Fatalf("eager estimate differs:\n got %+v\nwant %+v", eager.Estimate, plain.Estimate)
	}
	if !reflect.DeepEqual(eager.Selection, plain.Selection) {
		t.Fatal("eager selection differs")
	}
}

// TestSampleStreamingQuarantineDegrades: quarantining a streaming
// representative drives the substitution ladder end to end and is
// reported loudly.
func TestSampleStreamingQuarantineDegrades(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	gpu := megsim.DefaultGPUConfig()

	ref, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{}, gpu)
	if err != nil {
		t.Fatal(err)
	}
	victim := ref.Representatives()[0]

	srun, err := megsim.SampleStreaming(context.Background(), tr, megsim.StreamingOptions{
		Resilience: megsim.ResilienceConfig{Quarantine: []int{victim}},
	}, gpu)
	if err != nil {
		t.Fatal(err)
	}
	if !srun.Degraded() {
		t.Fatal("quarantined representative did not degrade the run")
	}
	found := false
	for _, s := range srun.Degradation.Substitutions {
		if s.From == victim {
			found = true
			if _, ok := srun.RepresentativeStats[s.To]; !ok {
				t.Fatalf("substitute %d was not simulated", s.To)
			}
		}
	}
	if !found && len(srun.Degradation.LostStrata) == 0 {
		t.Fatalf("no substitution or loss recorded for %d: %+v", victim, srun.Degradation)
	}
	if _, ok := srun.RepresentativeStats[victim]; ok {
		t.Fatalf("quarantined frame %d was simulated", victim)
	}
}
