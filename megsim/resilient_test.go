package megsim_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/megsim"
)

// TestSampleResilientHealthyMatchesSample: with nothing failing, the
// supervised sampling path must land on exactly the estimate the plain
// Sample path computes — supervision is free when the run is healthy.
func TestSampleResilientHealthyMatchesSample(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	cfg, gpu := megsim.DefaultConfig(), megsim.DefaultGPUConfig()

	plain, err := megsim.Sample(tr, cfg, gpu)
	if err != nil {
		t.Fatal(err)
	}
	rrun, err := megsim.SampleResilient(context.Background(), tr, cfg, gpu, megsim.ResilienceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rrun.Degraded() {
		t.Fatalf("healthy run reported degraded: %+v", rrun.Degradation)
	}
	if rrun.Estimate != plain.Estimate {
		t.Fatalf("supervised estimate differs:\n got %+v\nwant %+v", rrun.Estimate, plain.Estimate)
	}
	if len(rrun.Supervision.Quarantined) != 0 || rrun.Supervision.Retried != 0 {
		t.Fatalf("healthy supervision: %+v", rrun.Supervision)
	}
}

// TestSampleResilientDegradationLoop: pre-quarantining a representative
// must drive the supervise-then-degrade loop — the substitute frame is
// simulated in a later round against the same checkpoint, the
// degradation is reported, and the estimate matches the degraded
// selection computed by hand.
func TestSampleResilientDegradationLoop(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	cfg, gpu := megsim.DefaultConfig(), megsim.DefaultGPUConfig()

	plain, err := megsim.Sample(tr, cfg, gpu)
	if err != nil {
		t.Fatal(err)
	}
	victim := plain.Representatives()[0]

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	rrun, err := megsim.SampleResilient(context.Background(), tr, cfg, gpu, megsim.ResilienceConfig{
		CheckpointPath: ckpt,
		Quarantine:     []int{victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rrun.Degraded() {
		t.Fatal("quarantined representative did not degrade the run")
	}
	d := rrun.Degradation
	if len(d.Substitutions) != 1 || d.Substitutions[0].Original != victim {
		t.Fatalf("substitutions = %+v, want one for frame %d", d.Substitutions, victim)
	}
	sub := d.Substitutions[0].Substitute
	if _, ok := rrun.RepresentativeStats[sub]; !ok {
		t.Fatalf("substitute frame %d was not simulated (have %v)", sub, rrun.RepresentativeStats)
	}
	if _, ok := rrun.RepresentativeStats[victim]; ok {
		t.Fatalf("quarantined frame %d was simulated", victim)
	}
	want, err := d.Estimate(rrun.RepresentativeStats)
	if err != nil {
		t.Fatal(err)
	}
	if rrun.Estimate != want {
		t.Fatalf("estimate not from the degraded selection:\n got %+v\nwant %+v", rrun.Estimate, want)
	}
	// The quarantine is recorded and loud, never silent.
	if len(rrun.Supervision.Quarantined) != 1 || rrun.Supervision.Quarantined[0].Frame != victim {
		t.Fatalf("quarantine record: %+v", rrun.Supervision.Quarantined)
	}
}

// TestSampleResilientCancelThenResume: cancellation surfaces as a
// context error, and a later run resuming the checkpoint adopts the
// completed representatives and matches an uninterrupted run exactly.
func TestSampleResilientCancelThenResume(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("jjo", testScale())
	cfg, gpu := megsim.DefaultConfig(), megsim.DefaultGPUConfig()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // killed before the first frame boundary
	if _, err := megsim.SampleResilient(ctx, tr, cfg, gpu, megsim.ResilienceConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v", err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ref, err := megsim.SampleResilient(context.Background(), tr, cfg, gpu, megsim.ResilienceConfig{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}

	res, err := megsim.SampleResilient(context.Background(), tr, cfg, gpu, megsim.ResilienceConfig{
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supervision.ResumeErr != nil {
		t.Fatalf("resume error: %v", res.Supervision.ResumeErr)
	}
	if len(res.Supervision.Resumed) == 0 {
		t.Fatal("resume adopted nothing from the checkpoint")
	}
	if res.Estimate != ref.Estimate {
		t.Fatalf("resumed estimate differs:\n got %+v\nwant %+v", res.Estimate, ref.Estimate)
	}
}

// TestRunFingerprintSensitivity: the fingerprint must move with every
// result-affecting input and stay put for knobs that are byte-identical
// by construction (tile-worker counts >= 1, observability).
func TestRunFingerprintSensitivity(t *testing.T) {
	tr := megsim.MustGenerateBenchmark("hcr", testScale())
	gpu := megsim.DefaultGPUConfig()
	base := megsim.RunFingerprint(tr, gpu)

	other := gpu
	other.DeferredShading = !other.DeferredShading
	if megsim.RunFingerprint(tr, other) == base {
		t.Fatal("fingerprint ignores DeferredShading")
	}
	tr2 := megsim.MustGenerateBenchmark("jjo", testScale())
	if megsim.RunFingerprint(tr2, gpu) == base {
		t.Fatal("fingerprint ignores the trace")
	}

	tw := gpu
	tw.TileWorkers = 1
	tw4 := gpu
	tw4.TileWorkers = 4
	if megsim.RunFingerprint(tr, tw) != megsim.RunFingerprint(tr, tw4) {
		t.Fatal("fingerprint varies across byte-identical tile-worker counts")
	}
	obs := gpu
	obs.Obs = megsim.NewObsRegistry(0)
	if megsim.RunFingerprint(tr, obs) != base {
		t.Fatal("fingerprint varies with observability")
	}
}
