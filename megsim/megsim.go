// Package megsim is the public API of the MEGsim reproduction: a
// sampling methodology that accelerates cycle-accurate GPU simulation of
// graphics workloads by simulating only a small set of representative
// frames (Ortiz et al., "MEGsim: A Novel Methodology for Efficient
// Simulation of Graphics Workloads in GPUs", ISPASS 2022).
//
// The typical flow is:
//
//	trace := megsim.MustGenerateBenchmark("bbr1", megsim.DefaultScale())
//	run, err := megsim.Sample(trace, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
//	// run.Estimate holds full-sequence statistics obtained by
//	// simulating only run.Representatives (tens of frames instead of
//	// thousands).
//
// Everything is deterministic given the seeds carried in the configs.
// The heavy machinery lives in internal packages; this package re-exports
// the types a user needs through aliases so the whole system is usable
// from a single import.
package megsim

import (
	"fmt"
	"image"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/simmatrix"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// Re-exported configuration and result types. Aliases keep the full
// method sets available to callers.
type (
	// Trace is a self-contained graphics workload: shader programs,
	// meshes, textures and a per-frame command stream.
	Trace = gltrace.Trace
	// Mesh is an indexed triangle mesh resource.
	Mesh = gltrace.Mesh
	// Texture is a texture resource descriptor.
	Texture = gltrace.Texture
	// GPUConfig is the timing-simulator configuration (Table I).
	GPUConfig = tbr.Config
	// FrameStats are the per-frame (or aggregated) simulator outputs.
	FrameStats = tbr.FrameStats
	// Config is the MEGsim methodology configuration.
	Config = core.Config
	// Selection is a clustering plus one representative per cluster.
	Selection = core.Selection
	// Characterization is the functional-simulation profile of a trace.
	Characterization = funcsim.Result
	// FeatureSet is the N x D matrix of per-frame characteristics.
	FeatureSet = core.FeatureSet
	// Accuracy holds per-metric relative errors.
	Accuracy = core.Accuracy
	// Profile describes a synthetic benchmark workload.
	Profile = workload.Profile
	// Scale controls workload resolution and length.
	Scale = workload.Scale
	// Metric identifies one of the evaluated performance metrics.
	Metric = core.Metric
	// ObsRegistry is the observability layer's metric + timeline
	// registry. Attach one to GPUConfig.Obs (or harness options) to
	// collect per-stage pipeline metrics and Chrome-trace timelines; a
	// nil registry disables observability at near-zero cost.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a plain-data copy of an ObsRegistry: counters,
	// histograms and timeline events, serializable as JSON or a Chrome
	// trace (WriteChromeTrace).
	ObsSnapshot = obs.Snapshot
	// ObsEvent is one timeline entry of an ObsSnapshot.
	ObsEvent = obs.Event
)

// NewObsRegistry returns an enabled observability registry with the
// default timeline capacity. traceCapacity overrides the event ring
// size (0 = default, negative = metrics only, no timeline).
func NewObsRegistry(traceCapacity int) *ObsRegistry {
	return obs.NewWith(obs.Options{TraceCapacity: traceCapacity})
}

// Metric constants (the four key metrics of the paper's Fig. 7).
const (
	MetricCycles    = core.MetricCycles
	MetricDRAM      = core.MetricDRAM
	MetricL2        = core.MetricL2
	MetricTileCache = core.MetricTileCache
)

// Recorder is the immediate-mode trace-capture API for authoring
// workloads programmatically (see gltrace.NewRecorder).
type Recorder = gltrace.Recorder

// NewRecorder starts capturing a trace for a width x height render
// target.
func NewRecorder(name string, width, height int) *Recorder {
	return gltrace.NewRecorder(name, width, height)
}

// DefaultConfig returns the paper's methodology settings: phase weights
// (0.108, 0.745, 0.147), texture-filter weighting, PRIM component, BIC
// threshold T = 0.85.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultGPUConfig returns the Table I GPU configuration.
func DefaultGPUConfig() GPUConfig { return tbr.DefaultConfig() }

// DefaultScale returns the standard experiment scale (full Table II
// frame counts at reduced resolution).
func DefaultScale() Scale { return workload.DefaultScale }

// Benchmarks returns the Table II benchmark aliases.
func Benchmarks() []string { return workload.Aliases() }

// GetBenchmark returns a built-in benchmark profile by alias.
func GetBenchmark(alias string) (Profile, error) { return workload.Get(alias) }

// GenerateBenchmark synthesizes the trace of a built-in benchmark.
func GenerateBenchmark(alias string, sc Scale) (*Trace, error) {
	p, err := workload.Get(alias)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, sc)
}

// MustGenerateBenchmark is GenerateBenchmark panicking on error.
func MustGenerateBenchmark(alias string, sc Scale) *Trace {
	tr, err := GenerateBenchmark(alias, sc)
	if err != nil {
		panic(err)
	}
	return tr
}

// GenerateTrace synthesizes a trace from a custom profile.
func GenerateTrace(p Profile, sc Scale) (*Trace, error) { return workload.Generate(p, sc) }

// LoadTrace reads a trace file written by Trace.SaveFile.
func LoadTrace(path string) (*Trace, error) { return gltrace.LoadFile(path) }

// Characterize runs the fast functional simulation that produces the
// per-frame profiles MEGsim clusters on (the cheap first pass).
func Characterize(tr *Trace) (*Characterization, error) { return funcsim.Run(tr) }

// SelectFrames builds the vectors of characteristics and picks the
// representative frames.
func SelectFrames(ch *Characterization, cfg Config) (*Selection, error) {
	fs, err := core.BuildFeatures(ch, cfg.Feature)
	if err != nil {
		return nil, err
	}
	return core.Select(fs, cfg)
}

// Simulator is the cycle-level TBR GPU simulator.
type Simulator = tbr.Simulator

// NewSimulator builds a timing simulator over a trace.
func NewSimulator(cfg GPUConfig, tr *Trace) (*Simulator, error) { return tbr.New(cfg, tr) }

// Run is the complete outcome of a MEGsim sampling run.
type Run struct {
	// Trace is the analyzed workload.
	Trace *Trace
	// Characterization is the functional profile.
	Characterization *Characterization
	// Selection holds the clustering and the representative frames.
	Selection *Selection
	// RepresentativeStats maps representative frame -> simulated stats.
	RepresentativeStats map[int]FrameStats
	// Estimate is the extrapolated full-sequence statistics.
	Estimate FrameStats
}

// Representatives returns the frames that were actually simulated.
func (r *Run) Representatives() []int { return r.Selection.Representatives }

// ReductionFactor returns frames/representatives (the headline Table III
// metric).
func (r *Run) ReductionFactor() float64 { return r.Selection.ReductionFactor() }

// Sample executes the full MEGsim flow on a trace: characterize, select
// representatives, simulate only those frames on the cycle-level
// simulator, and extrapolate full-sequence statistics.
func Sample(tr *Trace, cfg Config, gpu GPUConfig) (*Run, error) {
	ch, err := Characterize(tr)
	if err != nil {
		return nil, fmt.Errorf("megsim: characterization: %w", err)
	}
	sel, err := SelectFrames(ch, cfg)
	if err != nil {
		return nil, fmt.Errorf("megsim: selection: %w", err)
	}
	sim, err := NewSimulator(gpu, tr)
	if err != nil {
		return nil, fmt.Errorf("megsim: simulator: %w", err)
	}
	repStats := make(map[int]FrameStats, sel.NumRepresentatives())
	for _, f := range sel.Representatives {
		repStats[f] = sim.SimulateFrame(f)
	}
	est, err := sel.Estimate(repStats)
	if err != nil {
		return nil, fmt.Errorf("megsim: estimation: %w", err)
	}
	return &Run{
		Trace:               tr,
		Characterization:    ch,
		Selection:           sel,
		RepresentativeStats: repStats,
		Estimate:            est,
	}, nil
}

// SimulateFull runs the cycle-level simulator over every frame — the
// expensive baseline MEGsim avoids; exposed for validation studies.
func SimulateFull(tr *Trace, gpu GPUConfig) ([]FrameStats, error) {
	sim, err := NewSimulator(gpu, tr)
	if err != nil {
		return nil, err
	}
	return sim.SimulateAll(nil), nil
}

// SimulateFullParallel is SimulateFull across worker goroutines
// (0 = GOMAXPROCS). Frame isolation makes the result bit-identical to
// the sequential run; it requires GPUConfig.FlushCachesPerFrame.
func SimulateFullParallel(tr *Trace, gpu GPUConfig, workers int) ([]FrameStats, error) {
	return tbr.SimulateAllParallel(gpu, tr, workers, nil)
}

// GPUPresets returns named GPU configurations (mali450 = Table I,
// lowend, highend, tbdr) for design-space studies.
func GPUPresets() map[string]GPUConfig { return tbr.Presets() }

// GPUPreset returns a named preset configuration.
func GPUPreset(name string) (GPUConfig, error) { return tbr.Preset(name) }

// RenderFrame rasterizes one frame of a trace to an image for visual
// inspection (per-material colors, depth shading).
func RenderFrame(tr *Trace, frame int) (*image.RGBA, error) {
	return funcsim.RenderFrame(tr, frame)
}

// SumStats totals per-frame statistics.
func SumStats(frames []FrameStats) FrameStats { return core.SumStats(frames) }

// CompareAccuracy returns the per-metric relative error of an estimate
// against ground truth.
func CompareAccuracy(estimate, actual *FrameStats) Accuracy {
	return core.EvaluateAccuracy(estimate, actual)
}

// SimilarityMatrix computes the frame similarity matrix of a feature
// set (Fig. 5); render it with WritePGM/WritePPM. Pass sel.Features for
// a whole selection, or a windowed FeatureSet for a sub-sequence.
func SimilarityMatrix(fs *FeatureSet) *simmatrix.Matrix {
	return simmatrix.New(fs.Vectors)
}
