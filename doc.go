// Package repro is a from-scratch Go reproduction of "MEGsim: A Novel
// Methodology for Efficient Simulation of Graphics Workloads in GPUs"
// (Ortiz, Corbalán-Navarro, Aragón, González — ISPASS 2022).
//
// The public API lives in repro/megsim; the substrates (TBR GPU timing
// simulator, functional simulator, workload synthesizer, clustering,
// power model) live under internal/. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package repro
